/**
 * @file
 * Using the Table I runtime API directly.
 *
 * Walks through what a DL framework's memory manager would do on
 * MC-DLA: allocate deviceremote backing store with cudaMallocRemote
 * under LOCAL vs BW_AWARE placement, schedule offload/prefetch pairs
 * with the extended cudaMemcpyAsync directions, and observe the Fig 10
 * bandwidth difference between the two policies.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    EventQueue eq;

    // An MC-DLA ring fabric: D0's backing store is half of each
    // neighboring memory-node (Fig 8a).
    auto fabric = buildMcdlaRingFabric(eq, FabricConfig{});
    MemoryNodeConfig board;
    DeviceAddressSpace space(
        "dev0", 16 * kGiB,
        {RemoteRegion{0, board.capacity() / 2},
         RemoteRegion{7, board.capacity() / 2}});
    DmaEngine dma(eq, "dev0.dma", fabric->vmemPaths(0));

    std::cout << "Device 0 address space: "
              << formatBytes(static_cast<double>(space.localCapacity()))
              << " devicelocal + "
              << formatBytes(static_cast<double>(
                     space.remoteCapacity()))
              << " deviceremote\n\n";

    for (PagePolicy policy : {PagePolicy::Local, PagePolicy::BwAware}) {
        VmemRuntime runtime(space, dma, policy);

        // cudaMallocRemote(&feature_maps, 256 MB);
        const RemotePtr fmaps = runtime.mallocRemote(256 * kMiB);
        const Placement &placement = runtime.placement(fmaps);
        std::cout << pagePolicyName(policy) << " placement of 256 MiB: ";
        for (std::size_t i = 0; i < placement.fractions.size(); ++i) {
            if (placement.fractions[i] > 0.0) {
                std::cout << TablePrinter::num(
                                 100.0 * placement.fractions[i], 0)
                          << "% on M"
                          << space.region(i).targetIndex << "  ";
            }
        }
        std::cout << '\n';

        // cudaMemcpyAsync(fmaps, ..., LocalToRemote): offload after the
        // last forward use...
        const Tick start = eq.now();
        Tick offloaded = 0;
        runtime.memcpyAsync(fmaps, 256.0 * 1024 * 1024,
                            DmaDirection::LocalToRemote,
                            [&] { offloaded = eq.now() - start; });
        eq.run();

        // ...and prefetch it back before the backward pass needs it.
        const Tick mark = eq.now();
        Tick prefetched = 0;
        runtime.memcpyAsync(fmaps, 256.0 * 1024 * 1024,
                            DmaDirection::RemoteToLocal,
                            [&] { prefetched = eq.now() - mark; });
        eq.run();

        std::cout << "  offload:  " << formatTime(offloaded) << " ("
                  << formatBandwidth(256.0 * 1024 * 1024
                                     / ticksToSeconds(offloaded))
                  << ")\n";
        std::cout << "  prefetch: " << formatTime(prefetched) << " ("
                  << formatBandwidth(256.0 * 1024 * 1024
                                     / ticksToSeconds(prefetched))
                  << ")\n";

        // cudaFreeRemote(fmaps);
        runtime.freeRemote(fmaps);
        std::cout << "  freed; live remote allocations: "
                  << runtime.liveAllocations() << "\n\n";
    }

    std::cout << "BW_AWARE engages all N=6 links (150 GB/s); LOCAL "
                 "reaches one neighbor over N/2 links (75 GB/s) — "
                 "Fig 10's 2x latency relation.\n";
    return 0;
}
