/**
 * @file
 * Walkthrough: multi-job scheduling over the shared memory-node pool.
 *
 * Submits a small mixed job stream — a half-machine ResNet run, a
 * whole-machine VGG-E job that blocks behind it, and two small
 * single-device jobs — to an eight-device MC-DLA(B) cluster, first
 * under FIFO and then under memory-aware backfill, and prints the
 * per-job queueing/JCT metrics side by side. Backfill slots the small
 * jobs around the blocked heavyweight, cutting mean JCT; the pool
 * timeline shows the carve-outs coming and going.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

std::vector<JobSpec>
makeJobStream()
{
    // The same stream parseJobTrace() would produce from:
    //   arrival=0.00 workload=ResNet mode=dp batch=256 devices=6
    //       iterations=10 (one line)
    //   arrival=0.01 workload=VGG-E   mode=dp batch=512 devices=8
    //   arrival=0.02 workload=AlexNet mode=dp batch=128 devices=1
    //   arrival=0.03 workload=RNN-GEMV mode=dp batch=128 devices=1
    std::vector<JobSpec> jobs(4);
    jobs[0].name = "resnet-6d";
    jobs[0].workload = "ResNet";
    jobs[0].batch = 256;
    jobs[0].devices = 6;
    jobs[0].iterations = 10;
    jobs[0].arrivalSec = 0.00;
    jobs[1].name = "vgg-8d";
    jobs[1].workload = "VGG-E";
    jobs[1].batch = 512;
    jobs[1].devices = 8;
    jobs[1].arrivalSec = 0.01;
    jobs[2].name = "alexnet-1d";
    jobs[2].workload = "AlexNet";
    jobs[2].batch = 128;
    jobs[2].devices = 1;
    jobs[2].arrivalSec = 0.02;
    jobs[3].name = "gemv-1d";
    jobs[3].workload = "RNN-GEMV";
    jobs[3].batch = 128;
    jobs[3].devices = 1;
    jobs[3].arrivalSec = 0.03;
    return jobs;
}

ClusterReport
runWith(SchedulerKind scheduler)
{
    ClusterConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;
    cfg.scheduler = scheduler;
    cfg.allocator = PoolAllocatorKind::FirstFit;
    Cluster cluster(cfg, makeJobStream());
    return cluster.run();
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;

    std::cout << "=== Cluster walkthrough: 4 jobs on one 8-device "
                 "MC-DLA(B) machine ===\n\n";

    for (SchedulerKind scheduler :
         {SchedulerKind::Fifo, SchedulerKind::Backfill}) {
        const ClusterReport report = runWith(scheduler);

        std::cout << "-- scheduler: " << schedulerToken(scheduler)
                  << " --\n";
        TablePrinter table({"Job", "Devs", "Pool(GiB)", "Arrive(s)",
                            "Queue(s)", "Service(s)", "JCT(s)",
                            "Slowdown"});
        for (const JobOutcome &job : report.jobs) {
            table.addRow(
                {job.spec.name, std::to_string(job.spec.devices),
                 TablePrinter::num(static_cast<double>(job.poolBytes)
                                       / static_cast<double>(kGiB),
                                   1),
                 TablePrinter::num(job.arrivalSec, 3),
                 TablePrinter::num(job.queueSec(), 3),
                 TablePrinter::num(job.serviceSec(), 3),
                 TablePrinter::num(job.jctSec(), 3),
                 TablePrinter::num(job.slowdown(), 2)});
        }
        table.print(std::cout);
        std::cout << "mean JCT " << report.meanJctSec()
                  << " s, mean queue " << report.meanQueueSec()
                  << " s, makespan " << report.makespanSec
                  << " s, peak pool "
                  << report.peakPoolUtilization() * 100.0 << "%\n\n";
    }

    std::cout << "FIFO parks the single-device jobs behind the blocked "
                 "whole-machine VGG run;\nbackfill slots them into the "
                 "two devices ResNet leaves free, trading a little\n"
                 "VGG delay for a much lower mean JCT.\n";
    return 0;
}
