/**
 * @file
 * The memory capacity wall (Sections II-B and V-E).
 *
 * Builds the workload class the paper's user-productivity section
 * motivates: end-to-end video understanding, where every input frame
 * passes through a CNN encoder whose features feed an unrolled LSTM.
 * Training stashes the CNN activations of *every frame*, so the
 * footprint scales with the video length — precisely the O(N) memory
 * growth of Section II-B.
 *
 * The example shows: (1) keeping everything resident overflows a 16 GiB
 * device (the wall), (2) host-backed virtualization makes it trainable
 * but PCIe-bound, and (3) MC-DLA trains it at device-side speed while
 * exposing a tens-of-TB pool.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

/**
 * Video captioner sketch: per-frame conv encoder (112x112 inputs)
 * feeding an LSTM over @p frames timesteps.
 */
Network
buildVideoCaptioner(std::int64_t frames, std::int64_t hidden = 1024)
{
    Network net("VideoCaptioner");
    net.setTimesteps(frames);

    const auto frame_shape = TensorShape::chw(3, 112, 112);
    LayerId video = net.addLayer(
        Layer::input("video", TensorShape{frames, 3, 112, 112}));

    LayerId h = invalidLayerId;
    // Frame-0 layers own the weights shared across frames.
    std::map<std::string, LayerId> owners;
    auto tie_or_own = [&](Layer layer, const std::string &role) {
        auto it = owners.find(role);
        if (it != owners.end())
            layer.markWeightsTied(it->second);
        return layer;
    };
    for (std::int64_t t = 0; t < frames; ++t) {
        const std::string p = "f" + std::to_string(t);
        const bool first = t == 0;
        LayerId x = net.addAfter(
            tie_or_own(Layer::conv2d(p + "/conv1", frame_shape, 64, 3,
                                     1, 1),
                       "conv1"),
            video);
        if (first)
            owners["conv1"] = x;
        TensorShape s = net.layer(x).outShape();
        x = net.addAfter(Layer::pool(p + "/pool1", s, 2, 2), x);
        s = net.layer(x).outShape();
        x = net.addAfter(
            tie_or_own(Layer::conv2d(p + "/conv2", s, 128, 3, 1, 1),
                       "conv2"),
            x);
        if (first)
            owners["conv2"] = x;
        s = net.layer(x).outShape();
        x = net.addAfter(Layer::globalPool(p + "/gap", s), x);
        x = net.addAfter(
            tie_or_own(Layer::fullyConnected(p + "/proj", 128, hidden),
                       "proj"),
            x);
        if (first)
            owners["proj"] = x;

        // Temporal model.
        Layer cell = Layer::lstmCell("t" + std::to_string(t), hidden);
        if (!first)
            cell.markWeightsTied(owners.at("cell"));
        std::vector<LayerId> inputs{x};
        if (h != invalidLayerId)
            inputs.push_back(h);
        h = net.addLayer(std::move(cell), std::move(inputs));
        if (first)
            owners["cell"] = h;
    }
    LayerId fc = net.addAfter(
        Layer::fullyConnected("caption", hidden, 10000), h);
    net.layer(fc).setCountsTowardDepth(false);
    net.addAfter(Layer::softmaxLoss("loss", 10000), fc);
    net.validate();
    return net;
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;
    constexpr std::int64_t frames = 128;
    constexpr std::int64_t batch = 256;
    const Network net = buildVideoCaptioner(frames);

    std::cout << "Workload: " << net.name() << ", " << frames
              << " frames/clip, batch " << batch << " over 8 devices\n";

    // The wall: what if nothing is offloaded?
    OffloadPolicy no_virt;
    no_virt.virtualizeMemory = false;
    const OffloadPlan resident_plan(net, no_virt);
    const double resident = static_cast<double>(
        resident_plan.residentBytesPerSample()) * (batch / 8.0);
    std::cout << "\nResident footprint without virtualization: "
              << formatBytes(resident) << " per device -> "
              << (resident > 16.0 * static_cast<double>(kGiB)
                      ? "exceeds a 16 GiB device: capacity wall"
                      : "fits")
              << '\n';

    const OffloadPlan virt_plan(net, OffloadPolicy{});
    std::cout << "Migration volume with vDNN-style virtualization: "
              << formatBytes(static_cast<double>(
                     virt_plan.offloadBytesPerSample())
                     * (batch / 8.0))
              << " per device per direction\n\n";

    TablePrinter table({"Design", "Exposed memory", "Iter(ms)",
                        "Speedup", "Host traffic(GB)"});
    Simulator sim;
    double dc = 0.0;
    for (SystemDesign design :
         {SystemDesign::DcDla, SystemDesign::HcDla,
          SystemDesign::McDlaB}) {
        // The captioner is built here, not registered, so hand the
        // network to the facade directly.
        Scenario sc;
        sc.design = design;
        sc.mode = ParallelMode::DataParallel;
        sc.globalBatch = batch;
        std::uint64_t exposed = 0;
        Simulator::Hooks hooks;
        hooks.postRun = [&](System &system, const IterationResult &) {
            exposed = system.totalExposedMemory();
        };
        const IterationResult r = sim.run(sc, net, hooks);
        if (design == SystemDesign::DcDla)
            dc = r.iterationSeconds();
        table.addRow({
            systemDesignName(design),
            formatBytes(static_cast<double>(exposed)),
            TablePrinter::num(r.iterationSeconds() * 1e3, 1),
            TablePrinter::num(dc / r.iterationSeconds(), 2),
            TablePrinter::num(r.hostBytes / 1e9, 1),
        });
    }
    table.print(std::cout);

    std::cout << "\nMC-DLA trains the memory-hungry algorithm at "
                 "device-side speed with zero host-interface traffic, "
                 "while expanding the pool to tens of TBs (Section "
                 "V-E).\n";
    return 0;
}
