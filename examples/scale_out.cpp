/**
 * @file
 * Scale-out exploration (Section VI / Figure 15).
 *
 * The paper's future-work direction: NVSwitch-class device-side
 * switches let system vendors grow the device-side plane beyond eight
 * devices. This example scales the MC-DLA ring and the DC-DLA baseline
 * from 4 to 32 device-nodes (the ring simply grows: every device still
 * sees two neighbor memory-nodes) and reports how the memory pool and
 * the MC-DLA advantage evolve with node size.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    Simulator sim;

    std::cout << "Scale-out study: ResNet, data-parallel, weak scaling "
                 "at 64 samples/device\n\n";

    TablePrinter table({"Devices", "Pool(TB)", "DC-DLA(ms)",
                        "MC-DLA(B)(ms)", "Speedup", "Ring stages"});
    for (int devices : {4, 8, 16, 32}) {
        double dc = 0.0, mc = 0.0, pool = 0.0;
        int stages = 0;
        for (SystemDesign design :
             {SystemDesign::DcDla, SystemDesign::McDlaB}) {
            Scenario sc;
            sc.design = design;
            sc.workload = "ResNet";
            sc.mode = ParallelMode::DataParallel;
            sc.globalBatch = 64LL * devices;
            sc.base.fabric.numDevices = devices;
            Simulator::Hooks hooks;
            hooks.postRun = [&](System &system,
                                const IterationResult &) {
                if (design != SystemDesign::McDlaB)
                    return;
                pool = static_cast<double>(
                    system.totalExposedMemory());
                stages = system.fabric().rings().empty()
                    ? 0
                    : system.fabric().rings()[0].stageCount();
            };
            const IterationResult r = sim.run(sc, hooks);
            (design == SystemDesign::DcDla ? dc : mc) =
                r.iterationSeconds();
        }
        table.addRow({std::to_string(devices),
                      TablePrinter::num(pool / kTB, 1),
                      TablePrinter::num(dc * 1e3, 2),
                      TablePrinter::num(mc * 1e3, 2),
                      TablePrinter::num(dc / mc, 2),
                      std::to_string(stages)});
    }
    table.print(std::cout);

    std::cout << "\nThe memory pool scales linearly with the plane "
                 "size while the MC-DLA advantage persists: the PCIe "
                 "host interface becomes ever more oversubscribed as "
                 "devices multiply, but the ring's per-device 150 GB/s "
                 "of virtualization bandwidth is constant by "
                 "construction.\n";
    return 0;
}
