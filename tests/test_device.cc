/**
 * @file
 * Unit tests for the device model: Table II defaults, the PE-array
 * timing model (roofline, quantization, scaling), and the Figure 2
 * generation catalog.
 */

#include <gtest/gtest.h>

#include "device/compute_model.hh"
#include "device/device_config.hh"
#include "device/device_node.hh"
#include "dnn/layer.hh"
#include "sim/logging.hh"

namespace mcdla
{
namespace
{

class ThrowingErrors : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

// ------------------------------------------------------- configuration

TEST(DeviceConfig, TableIIDefaults)
{
    const DeviceConfig cfg;
    EXPECT_EQ(cfg.numPes, 1024);
    EXPECT_EQ(cfg.macsPerPe, 125);
    EXPECT_DOUBLE_EQ(cfg.freqGhz, 1.0);
    EXPECT_EQ(cfg.sramPerPe, 32u * kKiB);
    EXPECT_DOUBLE_EQ(cfg.memBandwidth, 900.0 * kGB);
    EXPECT_EQ(cfg.memLatencyCycles, 100);
    EXPECT_EQ(cfg.numLinks, 6);
    EXPECT_DOUBLE_EQ(cfg.linkBandwidth, 25.0 * kGB);
}

TEST(DeviceConfig, PeakThroughput)
{
    const DeviceConfig cfg;
    // 1024 PEs x 125 MACs @ 1 GHz = 128 TMAC/s.
    EXPECT_DOUBLE_EQ(cfg.peakMacsPerSec(), 128e12);
}

TEST(DeviceConfig, MemLatencyInTicks)
{
    const DeviceConfig cfg;
    // 100 cycles at 1 GHz = 100 ns.
    EXPECT_EQ(cfg.memLatency(), 100 * ticksPerNs);
}

// ----------------------------------------------------- generation catalog

TEST(Generations, CatalogHasFiveGenerationsOldestFirst)
{
    const auto catalog = deviceGenerationCatalog();
    ASSERT_EQ(catalog.size(), 5u);
    EXPECT_EQ(catalog[0].name, "Kepler");
    EXPECT_EQ(catalog[4].name, "TPUv2");
    // Peak compute grows monotonically through Volta.
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_GT(catalog[i].config.peakMacsPerSec(),
                  catalog[i - 1].config.peakMacsPerSec());
}

TEST(Generations, VoltaMatchesTableII)
{
    const DeviceConfig &volta = deviceGeneration("Volta");
    EXPECT_EQ(volta.macsPerPe, 125);
    EXPECT_DOUBLE_EQ(volta.memBandwidth, 900.0 * kGB);
}

TEST(Generations, ComputeGrowthOutpacesPcie)
{
    // The core Fig 2 premise: device throughput grew ~20-30x while PCIe
    // gen3 stayed flat.
    const DeviceConfig &kepler = deviceGeneration("Kepler");
    const DeviceConfig &volta = deviceGeneration("Volta");
    const double growth =
        volta.peakMacsPerSec() / kepler.peakMacsPerSec();
    EXPECT_GE(growth, 15.0);
    EXPECT_LE(growth, 40.0);
}

TEST_F(ThrowingErrors, UnknownGenerationIsFatal)
{
    EXPECT_THROW(deviceGeneration("Turing"), FatalError);
}

// -------------------------------------------------------- compute model

class ComputeModelTest : public ::testing::Test
{
  protected:
    DeviceConfig cfg;
    ComputeModel model{cfg};
    LayerScaling whole{64, 1};
};

TEST_F(ComputeModelTest, GemmUtilizationBounded)
{
    const GemmShape g{96, 363, 55 * 55};
    const double util = model.gemmUtilization(g, whole);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST_F(ComputeModelTest, GemmTimeScalesWithWork)
{
    const GemmShape small{64, 64, 16};
    const GemmShape big{64, 64, 16 * 64};
    EXPECT_GT(model.gemmComputeTime(big, whole),
              model.gemmComputeTime(small, whole));
}

TEST_F(ComputeModelTest, ModelShardsReduceComputeTime)
{
    const GemmShape g{4096, 4096, 1};
    const LayerScaling sharded{64, 8};
    EXPECT_LT(model.gemmComputeTime(g, sharded),
              model.gemmComputeTime(g, whole));
}

TEST_F(ComputeModelTest, ConvForwardBackwardRelation)
{
    const Layer conv = Layer::conv2d("c", TensorShape::chw(64, 56, 56),
                                     128, 3, 1, 1);
    const LayerTiming t = model.layerTiming(conv, whole);
    EXPECT_GT(t.forward, 0u);
    // Backward runs the dX and dW GEMMs: ~2x forward.
    EXPECT_GT(t.backward, t.forward);
    EXPECT_LT(t.backward, 3 * t.forward);
    EXPECT_GT(t.weightUpdate, 0u);
}

TEST_F(ComputeModelTest, SmallBatchGemvIsMemoryBound)
{
    // An RNN-style cell with batch 64: ~64 MACs per weight byte/4, well
    // under the 900 GB/s roofline ridge.
    const Layer cell = Layer::rnnCell("t", 1760);
    const LayerTiming t = model.layerTiming(cell, LayerScaling{64, 1});
    EXPECT_TRUE(t.memoryBound);
}

TEST_F(ComputeModelTest, LargeConvIsComputeBound)
{
    const Layer conv = Layer::conv2d("c", TensorShape::chw(256, 28, 28),
                                     512, 3, 1, 1);
    const LayerTiming t = model.layerTiming(conv, LayerScaling{256, 1});
    EXPECT_FALSE(t.memoryBound);
}

TEST_F(ComputeModelTest, InputLayerIsFree)
{
    const Layer in = Layer::input("in", TensorShape::chw(3, 224, 224));
    const LayerTiming t = model.layerTiming(in, whole);
    EXPECT_EQ(t.forward, 0u);
    EXPECT_EQ(t.backward, 0u);
    EXPECT_EQ(t.weightUpdate, 0u);
}

TEST_F(ComputeModelTest, CheapLayerCostsLessThanConv)
{
    const TensorShape s = TensorShape::chw(64, 56, 56);
    const Layer conv = Layer::conv2d("c", s, 64, 3, 1, 1);
    const Layer act = Layer::activation("a", s);
    EXPECT_LT(model.layerTiming(act, whole).forward,
              model.layerTiming(conv, whole).forward);
}

TEST_F(ComputeModelTest, ForwardTimeGrowsWithBatch)
{
    const Layer conv = Layer::conv2d("c", TensorShape::chw(64, 56, 56),
                                     128, 3, 1, 1);
    const Tick b64 = model.layerTiming(conv, LayerScaling{64, 1}).forward;
    const Tick b256 =
        model.layerTiming(conv, LayerScaling{256, 1}).forward;
    EXPECT_GT(b256, 3 * b64);
    EXPECT_LT(b256, 5 * b64);
}

TEST_F(ComputeModelTest, FasterDeviceIsFaster)
{
    const Layer conv = Layer::conv2d("c", TensorShape::chw(64, 56, 56),
                                     128, 3, 1, 1);
    const ComputeModel kepler(deviceGeneration("Kepler"));
    const ComputeModel volta(deviceGeneration("Volta"));
    EXPECT_GT(kepler.forwardTime(conv, whole),
              volta.forwardTime(conv, whole));
}

TEST_F(ComputeModelTest, WeightUpdateIsBandwidthBound)
{
    const Layer fc = Layer::fullyConnected("fc", 4096, 4096);
    const LayerTiming t = model.layerTiming(fc, whole);
    // 3x weight bytes at 900 GB/s plus launch overhead.
    const double expected_s =
        3.0 * static_cast<double>(fc.weightBytes()) / (900.0 * kGB);
    EXPECT_NEAR(ticksToSeconds(t.weightUpdate), expected_s + 2e-6,
                expected_s * 0.1 + 1e-6);
}

TEST_F(ComputeModelTest, UtilizationReflectsDataflowEfficiency)
{
    // A huge well-shaped GEMM should achieve close to the configured
    // dataflow efficiency, never more.
    const GemmShape g{1024, 1250, 1024};
    const double util = model.gemmUtilization(g, LayerScaling{1, 1});
    EXPECT_LE(util, cfg.dataflowEfficiency + 1e-9);
    EXPECT_GT(util, cfg.dataflowEfficiency * 0.8);
}

TEST_F(ComputeModelTest, InvalidScalingIsFatal)
{
    LogConfig::throwOnError = true;
    const Layer fc = Layer::fullyConnected("fc", 16, 16);
    EXPECT_THROW(model.layerTiming(fc, LayerScaling{0, 1}), FatalError);
    EXPECT_THROW(model.layerTiming(fc, LayerScaling{1, 0}), FatalError);
    LogConfig::throwOnError = false;
}

// ---------------------------------------------------------- device node

TEST(DeviceNode, SerialComputeOccupancy)
{
    EventQueue eq;
    DeviceNode dev(eq, "dev0", DeviceConfig{});
    EXPECT_EQ(dev.occupyCompute(0, 100), 100u);
    // Second op queues behind the first even if requested earlier.
    EXPECT_EQ(dev.occupyCompute(50, 100), 200u);
    // Idle gap honored.
    EXPECT_EQ(dev.occupyCompute(500, 100), 600u);
    EXPECT_EQ(dev.computeFreeAt(), 600u);
    dev.resetOccupancy();
    EXPECT_EQ(dev.computeFreeAt(), 0u);
}

TEST(DeviceNode, TracksBusyStats)
{
    EventQueue eq;
    DeviceNode dev(eq, "dev0", DeviceConfig{});
    dev.occupyCompute(0, 100);
    dev.occupyCompute(0, 50);
    EXPECT_DOUBLE_EQ(dev.stats().value("compute_busy_ticks"), 150.0);
    EXPECT_DOUBLE_EQ(dev.stats().value("ops_executed"), 2.0);
}

} // anonymous namespace
} // namespace mcdla
