/**
 * @file
 * Unit tests for the parallelization strategies: scaling, sync sizes,
 * gather-boundary analysis, and memory accounting.
 */

#include <gtest/gtest.h>

#include "dnn/builders.hh"
#include "parallel/strategy.hh"
#include "sim/logging.hh"

namespace mcdla
{
namespace
{

LayerId
findLayer(const Network &net, const std::string &name)
{
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id)
        if (net.layer(id).name() == name)
            return id;
    ADD_FAILURE() << "no layer named " << name;
    return invalidLayerId;
}

// ------------------------------------------------------- data parallel

TEST(DataParallel, BatchSplitsAcrossDevices)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy dp(net, ParallelMode::DataParallel, 8, 512);
    EXPECT_EQ(dp.perDeviceBatch(), 64);
    const Layer &conv = net.layer(findLayer(net, "conv1"));
    EXPECT_EQ(dp.scaling(conv).batch, 64);
    EXPECT_EQ(dp.scaling(conv).modelShards, 1);
}

TEST(DataParallel, NoForwardSync)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy dp(net, ParallelMode::DataParallel, 8, 512);
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id)
        EXPECT_FALSE(dp.forwardSync(id).has_value());
}

TEST(DataParallel, DwAllReducePerWeightedLayer)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy dp(net, ParallelMode::DataParallel, 8, 512);
    const LayerId fc6 = findLayer(net, "fc6");
    const auto sync = dp.backwardSync(fc6);
    ASSERT_TRUE(sync.has_value());
    EXPECT_EQ(sync->kind, CollectiveKind::AllReduce);
    EXPECT_FALSE(sync->blocking);
    EXPECT_DOUBLE_EQ(sync->bytes,
                     static_cast<double>(net.layer(fc6).weightBytes()));
    // Weightless layers have nothing to reduce.
    EXPECT_FALSE(dp.backwardSync(findLayer(net, "pool1")).has_value());
}

TEST(DataParallel, TiedRecurrentCellsReduceOnce)
{
    const Network net = builders::buildRnnGemv(10, 128);
    const ParallelStrategy dp(net, ParallelMode::DataParallel, 8, 512);
    int syncs = 0;
    double bytes = 0.0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        if (!net.layer(id).isRecurrent())
            continue;
        if (auto s = dp.backwardSync(id)) {
            ++syncs;
            bytes = s->bytes;
        }
    }
    EXPECT_EQ(syncs, 1); // only the untied owner (t0)
    EXPECT_DOUBLE_EQ(bytes, static_cast<double>(
        net.layer(findLayer(net, "t0")).weightBytes()));
}

TEST(DataParallel, SingleDeviceNeedsNoSync)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy dp(net, ParallelMode::DataParallel, 1, 512);
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        EXPECT_FALSE(dp.forwardSync(id).has_value());
        EXPECT_FALSE(dp.backwardSync(id).has_value());
    }
}

TEST(DataParallel, FullWeightsPerDevice)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy dp(net, ParallelMode::DataParallel, 8, 512);
    EXPECT_EQ(dp.weightBytesPerDevice(net), net.totalWeightBytes());
}

TEST(DataParallel, OffloadScalesWithDeviceBatch)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy dp(net, ParallelMode::DataParallel, 8, 512);
    const Layer &conv = net.layer(findLayer(net, "conv1"));
    EXPECT_DOUBLE_EQ(
        dp.offloadBytesPerDevice(conv),
        static_cast<double>(conv.outBytesPerSample()) * 64.0);
}

// ------------------------------------------------------ model parallel

TEST(ModelParallel, FullBatchShardedModel)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy mp(net, ParallelMode::ModelParallel, 8, 512);
    EXPECT_EQ(mp.perDeviceBatch(), 512);
    const Layer &conv = net.layer(findLayer(net, "conv1"));
    EXPECT_EQ(mp.scaling(conv).batch, 512);
    EXPECT_EQ(mp.scaling(conv).modelShards, 8);
    // Cheap layers replicate.
    const Layer &pool = net.layer(findLayer(net, "pool1"));
    EXPECT_EQ(mp.scaling(pool).modelShards, 1);
    EXPECT_EQ(mp.weightBytesPerDevice(net),
              net.totalWeightBytes() / 8);
}

TEST(ModelParallel, AlexNetGatherBoundariesMatchTowerScheme)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy mp(net, ParallelMode::ModelParallel, 8, 512);
    // Stage-ending convs and FC layers gather; the conv3->conv4->conv5
    // tower chain stays private (Krizhevsky restricted connectivity).
    EXPECT_TRUE(mp.isGatherBoundary(findLayer(net, "conv1")));
    EXPECT_TRUE(mp.isGatherBoundary(findLayer(net, "conv2")));
    EXPECT_FALSE(mp.isGatherBoundary(findLayer(net, "conv3")));
    EXPECT_FALSE(mp.isGatherBoundary(findLayer(net, "conv4")));
    EXPECT_TRUE(mp.isGatherBoundary(findLayer(net, "conv5")));
    EXPECT_TRUE(mp.isGatherBoundary(findLayer(net, "fc6")));
    EXPECT_TRUE(mp.isGatherBoundary(findLayer(net, "fc7")));
    EXPECT_TRUE(mp.isGatherBoundary(findLayer(net, "fc8")));
}

TEST(ModelParallel, VggGathersAtStageEnds)
{
    const Network net = builders::buildVggE();
    const ParallelStrategy mp(net, ParallelMode::ModelParallel, 8, 512);
    EXPECT_FALSE(mp.isGatherBoundary(findLayer(net, "conv3_1")));
    EXPECT_FALSE(mp.isGatherBoundary(findLayer(net, "conv3_3")));
    EXPECT_TRUE(mp.isGatherBoundary(findLayer(net, "conv3_4")));
    EXPECT_TRUE(mp.isGatherBoundary(findLayer(net, "conv5_4")));
}

TEST(ModelParallel, EveryRecurrentCellIsABoundary)
{
    const Network net = builders::buildRnnLstm1(6, 64);
    const ParallelStrategy mp(net, ParallelMode::ModelParallel, 8, 512);
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        if (!net.layer(id).isRecurrent())
            continue;
        EXPECT_TRUE(mp.isGatherBoundary(id));
        const auto fwd = mp.forwardSync(id);
        ASSERT_TRUE(fwd.has_value());
        EXPECT_EQ(fwd->kind, CollectiveKind::AllGather);
        EXPECT_TRUE(fwd->blocking);
        const auto bwd = mp.backwardSync(id);
        ASSERT_TRUE(bwd.has_value());
        EXPECT_EQ(bwd->kind, CollectiveKind::ReduceScatter);
    }
}

TEST(ModelParallel, SyncBytesCoverFullBatchOutput)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy mp(net, ParallelMode::ModelParallel, 8, 512);
    const LayerId conv1 = findLayer(net, "conv1");
    const auto sync = mp.forwardSync(conv1);
    ASSERT_TRUE(sync.has_value());
    EXPECT_DOUBLE_EQ(sync->bytes,
                     static_cast<double>(
                         net.layer(conv1).outBytesPerSample())
                         * 512.0);
}

TEST(ModelParallel, OffloadStashesOnlyTheShard)
{
    const Network net = builders::buildAlexNet();
    const ParallelStrategy mp(net, ParallelMode::ModelParallel, 8, 512);
    const Layer &conv = net.layer(findLayer(net, "conv1"));
    EXPECT_DOUBLE_EQ(
        mp.offloadBytesPerDevice(conv),
        static_cast<double>(conv.outBytesPerSample()) * 512.0 / 8.0);
}

TEST(ModelParallel, MoreFrequentSyncThanDataParallel)
{
    // Section II-C's core claim, in counted form.
    const Network net = builders::buildRnnGru(20, 128);
    const ParallelStrategy dp(net, ParallelMode::DataParallel, 8, 512);
    const ParallelStrategy mp(net, ParallelMode::ModelParallel, 8, 512);
    int dp_syncs = 0, mp_syncs = 0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        dp_syncs += dp.forwardSync(id).has_value()
            + dp.backwardSync(id).has_value();
        mp_syncs += mp.forwardSync(id).has_value()
            + mp.backwardSync(id).has_value();
    }
    EXPECT_GT(mp_syncs, 4 * dp_syncs);
}

// ------------------------------------------------------------- guards

TEST(Strategy, ModeNames)
{
    EXPECT_STREQ(parallelModeName(ParallelMode::DataParallel),
                 "data-parallel");
    EXPECT_STREQ(parallelModeName(ParallelMode::ModelParallel),
                 "model-parallel");
}

TEST(Strategy, RejectsDegenerateConfigs)
{
    LogConfig::throwOnError = true;
    const Network net = builders::buildAlexNet();
    EXPECT_THROW(
        ParallelStrategy(net, ParallelMode::DataParallel, 0, 512),
        FatalError);
    EXPECT_THROW(
        ParallelStrategy(net, ParallelMode::DataParallel, 8, 4),
        FatalError);
    LogConfig::throwOnError = false;
}

} // anonymous namespace
} // namespace mcdla
