/**
 * @file
 * Unit and end-to-end tests for the inference-serving subsystem:
 * request streams (synthesis determinism, trace round-trips), batch
 * policies, routers, the percentile helper, serving-knob validation,
 * the single-batch == standalone forward-only session guarantee, and
 * the policy inequalities the ablation demonstrates (continuous
 * batching beats static on the p99 tail at high load; SLO-aware
 * routing beats queue-depth routing under co-located training).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hh"
#include "core/options.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "core/simulator.hh"
#include "serving/batch_policy.hh"
#include "serving/request.hh"
#include "serving/router.hh"
#include "serving/serving.hh"
#include "sim/logging.hh"

namespace mcdla
{
namespace
{

class ServingTest : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

// --------------------------------------------------- request streams

TEST_F(ServingTest, SynthesisIsSeededAndSortedForEveryArrivalKind)
{
    for (ArrivalKind kind : allArrivalKinds()) {
        Random a(7), b(7), c(8);
        const auto x = synthesizeRequests(64, 500.0, kind, a);
        const auto y = synthesizeRequests(64, 500.0, kind, b);
        const auto z = synthesizeRequests(64, 500.0, kind, c);

        ASSERT_EQ(x.size(), 64u) << arrivalKindToken(kind);
        ASSERT_EQ(y.size(), 64u);
        bool differs = false;
        for (std::size_t i = 0; i < x.size(); ++i) {
            // Same seed: the same stream, bit for bit.
            EXPECT_EQ(x[i].arrivalSec, y[i].arrivalSec);
            EXPECT_EQ(x[i].samples, y[i].samples);
            EXPECT_GE(x[i].samples, 1);
            if (i > 0) {
                EXPECT_LE(x[i - 1].arrivalSec, x[i].arrivalSec);
            }
            if (x[i].arrivalSec != z[i].arrivalSec)
                differs = true;
        }
        // Different seed: a different stream.
        EXPECT_TRUE(differs) << arrivalKindToken(kind);
    }
}

TEST_F(ServingTest, ArrivalKindTokensRoundTrip)
{
    for (ArrivalKind kind : allArrivalKinds())
        EXPECT_EQ(parseArrivalKind(arrivalKindToken(kind)), kind);
    EXPECT_THROW(parseArrivalKind("fractal"), FatalError);
}

TEST_F(ServingTest, RequestTraceRoundTripsExactly)
{
    Random rng(11);
    const auto stream =
        synthesizeRequests(32, 1000.0, ArrivalKind::Bursty, rng);

    std::ostringstream trace;
    for (const Request &request : stream)
        trace << requestLine(request) << '\n';
    std::istringstream in(trace.str());
    const auto parsed = parseRequestTrace(in);

    ASSERT_EQ(parsed.size(), stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(parsed[i].name, stream[i].name);
        EXPECT_EQ(parsed[i].arrivalSec, stream[i].arrivalSec);
        EXPECT_EQ(parsed[i].samples, stream[i].samples);
    }
}

TEST_F(ServingTest, RequestTraceParserSortsCommentsAndRejects)
{
    {
        std::istringstream in("# a comment\n"
                              "arrival=0.5 samples=2 name=late\n"
                              "\n"
                              "arrival=0.1 name=early\n");
        const auto parsed = parseRequestTrace(in);
        ASSERT_EQ(parsed.size(), 2u);
        EXPECT_EQ(parsed[0].name, "early");
        EXPECT_EQ(parsed[0].samples, 1);
        EXPECT_EQ(parsed[1].name, "late");
        EXPECT_EQ(parsed[1].samples, 2);
    }
    {
        std::istringstream in("samples=2\n"); // no arrival
        EXPECT_THROW(parseRequestTrace(in), FatalError);
    }
    {
        std::istringstream in("arrival=0.1 flavor=mild\n");
        EXPECT_THROW(parseRequestTrace(in), FatalError);
    }
    {
        std::istringstream in("arrival=soon\n");
        EXPECT_THROW(parseRequestTrace(in), FatalError);
    }
}

// ----------------------------------------------------- batch policies

TEST_F(ServingTest, BatchPolicyTokensRoundTrip)
{
    for (BatchPolicyKind kind : allBatchPolicies())
        EXPECT_EQ(parseBatchPolicy(batchPolicyToken(kind)), kind);
    EXPECT_THROW(parseBatchPolicy("quantum"), FatalError);
}

TEST_F(ServingTest, StaticPolicyLaunchesOnlyFullBatchesUntilDrained)
{
    const auto policy =
        makeBatchPolicy(BatchPolicyKind::Static, 8, 0.005);
    EXPECT_EQ(policy->launchSamples(0, 0.0, false), 0);
    EXPECT_EQ(policy->launchSamples(7, 99.0, false), 0);
    EXPECT_EQ(policy->launchSamples(8, 0.0, false), 8);
    EXPECT_EQ(policy->launchSamples(13, 0.0, false), 8);
    // Drained: the partial tail flushes.
    EXPECT_EQ(policy->launchSamples(3, 0.0, true), 3);
    EXPECT_LT(policy->maxWaitSec(), 0.0);
}

TEST_F(ServingTest, DynamicPolicyLaunchesFullOrOnTimeout)
{
    const auto policy =
        makeBatchPolicy(BatchPolicyKind::Dynamic, 8, 0.005);
    EXPECT_EQ(policy->launchSamples(8, 0.0, false), 8);
    EXPECT_EQ(policy->launchSamples(3, 0.001, false), 0);
    EXPECT_EQ(policy->launchSamples(3, 0.005, false), 3);
    EXPECT_EQ(policy->launchSamples(3, 0.0, true), 3);
    EXPECT_DOUBLE_EQ(policy->maxWaitSec(), 0.005);
}

TEST_F(ServingTest, ContinuousPolicyLaunchesWhateverIsQueued)
{
    const auto policy =
        makeBatchPolicy(BatchPolicyKind::Continuous, 8, 0.005);
    EXPECT_EQ(policy->launchSamples(0, 0.0, false), 0);
    EXPECT_EQ(policy->launchSamples(1, 0.0, false), 1);
    EXPECT_EQ(policy->launchSamples(5, 0.0, false), 5);
    EXPECT_EQ(policy->launchSamples(21, 0.0, false), 8); // capped
    EXPECT_LT(policy->maxWaitSec(), 0.0);
}

// ------------------------------------------------------------ routers

TEST_F(ServingTest, RouterTokensRoundTrip)
{
    for (RouterKind kind : allRouters())
        EXPECT_EQ(parseRouter(routerToken(kind)), kind);
    EXPECT_EQ(parseRouter("round-robin"), RouterKind::RoundRobin);
    EXPECT_EQ(parseRouter("ll"), RouterKind::LeastLoaded);
    EXPECT_EQ(parseRouter("slo-aware"), RouterKind::SloAware);
    EXPECT_THROW(parseRouter("oracle"), FatalError);
}

std::vector<ReplicaLoad>
loads(std::initializer_list<std::pair<int, double>> specs)
{
    std::vector<ReplicaLoad> views;
    for (const auto &[queued, ewma] : specs) {
        ReplicaLoad view;
        view.queuedSamples = queued;
        view.ewmaPerSampleSec = ewma;
        views.push_back(view);
    }
    return views;
}

TEST_F(ServingTest, RoundRobinRouterCycles)
{
    const auto router = makeRouter(RouterKind::RoundRobin);
    const auto views = loads({{9, 1.0}, {0, 1.0}, {5, 1.0}});
    EXPECT_EQ(router->route(views, 1), 0u);
    EXPECT_EQ(router->route(views, 1), 1u);
    EXPECT_EQ(router->route(views, 1), 2u);
    EXPECT_EQ(router->route(views, 1), 0u);
}

TEST_F(ServingTest, LeastLoadedRouterPicksTheShallowestQueue)
{
    const auto router = makeRouter(RouterKind::LeastLoaded);
    EXPECT_EQ(router->route(loads({{4, 1.0}, {2, 1.0}, {7, 1.0}}), 1),
              1u);
    // In-flight samples count as load too.
    auto views = loads({{1, 1.0}, {2, 1.0}});
    views[0].inflightSamples = 4;
    EXPECT_EQ(router->route(views, 1), 1u);
}

TEST_F(ServingTest, SloAwareRouterPredictsWithObservedRates)
{
    const auto router = makeRouter(RouterKind::SloAware);
    // Replica 0 has the shorter queue but a 10x slower observed rate:
    // queue depth says 0, the latency prediction says 1.
    EXPECT_EQ(router->route(loads({{2, 0.010}, {5, 0.001}}), 1), 1u);
    // Warmup (no observed rates anywhere): degrade to least-loaded
    // rather than always-replica-0.
    EXPECT_EQ(router->route(loads({{3, 0.0}, {1, 0.0}}), 1), 1u);
}

// -------------------------------------------------- percentile helper

TEST_F(ServingTest, PercentileInterpolatesAndClamps)
{
    EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
    // Linear interpolation over sorted {1,2,3,4}: p50 sits halfway
    // between the middle pair, p25 on the second element.
    EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 25.0), 1.75);
}

// ------------------------------------------------- scenario knob wiring

TEST_F(ServingTest, ServingLabelRoundTripsAndDefaultsAreUnchanged)
{
    Scenario sc;
    sc.workload = "VGG-E";
    // Serving off: no serve block in the label.
    EXPECT_EQ(sc.label().find("serve"), std::string::npos);

    sc.serve = true;
    sc.replicas = 4;
    sc.sloMs = 25.0;
    sc.requestRate = 1000.0;
    sc.batchPolicy = BatchPolicyKind::Dynamic;
    sc.router = RouterKind::LeastLoaded;
    EXPECT_NE(sc.label().find("/serve/r4/dynamic/least-loaded/slo25"
                              "/rps1000"),
              std::string::npos)
        << sc.label();
    // Poisson is the default and stays implicit; others are named.
    EXPECT_EQ(sc.label().find("poisson"), std::string::npos);
    sc.arrivals = ArrivalKind::Diurnal;
    EXPECT_NE(sc.label().find("/diurnal"), std::string::npos);
}

TEST_F(ServingTest, ServingOptionsParseAndValidate)
{
    {
        OptionParser opts("t", "test");
        Scenario::addOptions(opts);
        const char *argv[] = {"t",        "--serve",   "--replicas",
                              "3",        "--requests", "64",
                              "--request-rate", "750", "--slo-ms",
                              "20",       "--batch-policy", "dynamic",
                              "--arrivals", "bursty",  "--router",
                              "rr"};
        std::ostringstream err;
        ASSERT_TRUE(opts.parse(static_cast<int>(std::size(argv)),
                               argv, err));
        const Scenario sc = Scenario::fromOptions(opts);
        EXPECT_TRUE(sc.serve);
        EXPECT_EQ(sc.replicas, 3);
        EXPECT_EQ(sc.requests, 64);
        EXPECT_DOUBLE_EQ(sc.requestRate, 750.0);
        EXPECT_DOUBLE_EQ(sc.sloMs, 20.0);
        EXPECT_EQ(sc.batchPolicy, BatchPolicyKind::Dynamic);
        EXPECT_EQ(sc.arrivals, ArrivalKind::Bursty);
        EXPECT_EQ(sc.router, RouterKind::RoundRobin);
    }
    const auto rejects = [](std::initializer_list<const char *> extra) {
        OptionParser opts("t", "test");
        Scenario::addOptions(opts);
        std::vector<const char *> argv = {"t"};
        argv.insert(argv.end(), extra.begin(), extra.end());
        std::ostringstream err;
        ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()),
                               argv.data(), err));
        EXPECT_THROW(Scenario::fromOptions(opts), FatalError);
    };
    rejects({"--replicas", "0"});
    rejects({"--requests", "-5"});
    rejects({"--request-rate", "0"});
    rejects({"--slo-ms", "-1"});
    rejects({"--batch-timeout-ms", "-2"});
}

TEST_F(ServingTest, ServingClusterRejectsInfeasibleShapes)
{
    const auto base = [] {
        Scenario sc;
        sc.design = SystemDesign::McDlaB;
        sc.workload = "AlexNet";
        sc.serve = true;
        sc.globalBatch = 8;
        return sc;
    }();
    Random rng(1);
    const auto stream =
        synthesizeRequests(4, 100.0, ArrivalKind::Poisson, rng);

    { // More replicas than devices.
        ServingConfig cfg;
        cfg.base = base;
        cfg.base.replicas = 9;
        EXPECT_THROW(ServingCluster(cfg, stream), FatalError);
    }
    { // Co-located training with every device a replica.
        ServingConfig cfg;
        cfg.base = base;
        cfg.base.replicas = 8;
        JobSpec job;
        job.workload = "AlexNet";
        job.batch = 64;
        job.devices = 1;
        cfg.trainingJobs = {job};
        EXPECT_THROW(ServingCluster(cfg, stream), FatalError);
    }
    { // A request larger than the batch cap can never launch.
        ServingConfig cfg;
        cfg.base = base;
        Request big;
        big.arrivalSec = 0.0;
        big.samples = 9;
        EXPECT_THROW(ServingCluster(cfg, {big}), FatalError);
    }
    { // Non-positive SLO.
        ServingConfig cfg;
        cfg.base = base;
        cfg.base.sloMs = 0.0;
        EXPECT_THROW(ServingCluster(cfg, stream), FatalError);
    }
}

// ------------------------------------------------ serving end-to-end

TEST_F(ServingTest, SingleBatchReproducesForwardOnlySessionExactly)
{
    // One 4-sample request on one replica: the serving batch must be
    // the standalone forward-only session, tick for tick.
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = "VGG-E";
    sc.serve = true;
    sc.replicas = 1;
    sc.globalBatch = 8;

    Request request;
    request.arrivalSec = 0.0;
    request.samples = 4;
    ServingConfig cfg;
    cfg.base = sc;
    ServingCluster serving(cfg, {request});
    const ServingReport report = serving.run();

    ASSERT_EQ(report.completedRequests(), 1u);
    const RequestOutcome &outcome = report.requests[0];
    EXPECT_EQ(outcome.replica, 0);
    EXPECT_EQ(outcome.batchSamples, 4);
    EXPECT_DOUBLE_EQ(outcome.queueSec(), 0.0);

    EventQueue eq;
    System system(eq, sc.config());
    Simulator networks;
    const auto net = networks.network(sc.workload);
    TrainingSession solo(system, *net, ParallelMode::DataParallel, 4,
                         /*pipeline_stages=*/0, /*microbatches=*/1,
                         std::vector<int>{0}, /*forward_only=*/true);
    const IterationResult result = solo.run();

    EXPECT_DOUBLE_EQ(outcome.serviceSec(),
                     ticksToSeconds(result.makespan));
    EXPECT_DOUBLE_EQ(outcome.computeSec, result.breakdown.computeSec);
    EXPECT_DOUBLE_EQ(outcome.pagingSec, result.breakdown.vmemSec);
    // Forward-only still pages: the offload stashes write back.
    EXPECT_GT(outcome.pagingSec, 0.0);
}

TEST_F(ServingTest, ServingRunsAreReproducible)
{
    const auto run = [] {
        Scenario sc;
        sc.design = SystemDesign::McDlaB;
        sc.workload = "ResNet";
        sc.serve = true;
        sc.replicas = 2;
        sc.globalBatch = 8;
        Random rng(5);
        const auto stream =
            synthesizeRequests(48, 1500.0, ArrivalKind::Poisson, rng);
        ServingConfig cfg;
        cfg.base = sc;
        ServingCluster serving(cfg, stream);
        return serving.run();
    };
    const ServingReport a = run();
    const ServingReport b = run();
    ASSERT_EQ(a.requests.size(), b.requests.size());
    EXPECT_DOUBLE_EQ(a.makespanSec, b.makespanSec);
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].replica, b.requests[i].replica);
        EXPECT_DOUBLE_EQ(a.requests[i].doneSec, b.requests[i].doneSec);
    }
}

TEST_F(ServingTest, ContinuousBatchingBeatsStaticOnTheTailAtHighLoad)
{
    Random rng(3);
    const auto stream =
        synthesizeRequests(512, 2000.0, ArrivalKind::Poisson, rng);
    const auto runWith = [&stream](BatchPolicyKind policy) {
        Scenario sc;
        sc.design = SystemDesign::McDlaB;
        sc.workload = "ResNet";
        sc.serve = true;
        sc.replicas = 2;
        sc.globalBatch = 8;
        sc.batchPolicy = policy;
        ServingConfig cfg;
        cfg.base = sc;
        ServingCluster serving(cfg, stream);
        return serving.run();
    };
    const ServingReport fixed = runWith(BatchPolicyKind::Static);
    const ServingReport continuous =
        runWith(BatchPolicyKind::Continuous);
    ASSERT_EQ(fixed.completedRequests(), 512u);
    ASSERT_EQ(continuous.completedRequests(), 512u);
    // Static waits for full batches, so its queueing tail explodes;
    // continuous launches the moment a replica idles.
    EXPECT_LT(continuous.latencyPercentileMs(99.0),
              fixed.latencyPercentileMs(99.0) * 0.5);
    // Continuous coalesces smaller batches by construction.
    EXPECT_LT(continuous.meanBatchSamples(),
              fixed.meanBatchSamples());
}

TEST_F(ServingTest, SloAwareRoutingBeatsQueueDepthUnderCoLocation)
{
    // Near saturation (4 VGG-E replicas at cap 32 serve ~5600 req/s;
    // offer 5300) beside a 4-device data-parallel training job: the
    // gang's paging slows the boundary replicas, and only predictions
    // priced at observed service rates steer traffic away from them.
    Random rng(2);
    const auto stream = synthesizeRequests(2048, 5300.0,
                                           ArrivalKind::Poisson, rng);
    const auto runWith = [&stream](RouterKind router) {
        Scenario sc;
        sc.design = SystemDesign::McDlaB;
        sc.workload = "VGG-E";
        sc.serve = true;
        sc.replicas = 4;
        sc.globalBatch = 32;
        sc.router = router;
        JobSpec job;
        job.workload = "VGG-E";
        job.mode = ParallelMode::DataParallel;
        job.batch = 256;
        job.devices = 4;
        job.iterations = 5;
        ServingConfig cfg;
        cfg.base = sc;
        cfg.trainingJobs = {job};
        ServingCluster serving(cfg, stream);
        return serving.run();
    };
    const ServingReport rr = runWith(RouterKind::RoundRobin);
    const ServingReport ll = runWith(RouterKind::LeastLoaded);
    const ServingReport slo = runWith(RouterKind::SloAware);
    ASSERT_EQ(rr.completedRequests(), 2048u);
    ASSERT_EQ(ll.completedRequests(), 2048u);
    ASSERT_EQ(slo.completedRequests(), 2048u);
    ASSERT_TRUE(slo.trainingJobs[0].completed);

    const double rr_p99 = rr.latencyPercentileMs(99.0);
    const double ll_p99 = ll.latencyPercentileMs(99.0);
    const double slo_p99 = slo.latencyPercentileMs(99.0);
    EXPECT_LT(ll_p99, rr_p99);
    EXPECT_LT(slo_p99, ll_p99);
}

TEST_F(ServingTest, AdmissionControlShedsWhenPredictionsBlowTheSlo)
{
    // A tight SLO under heavy overload (one replica, bursty stream at
    // 4x its service rate): with shedding on, the doomed tail is
    // dropped at the door and the admitted requests keep a bounded
    // queue; with it off, every request completes eventually.
    Random rng(13);
    const auto stream = synthesizeRequests(256, 8000.0,
                                           ArrivalKind::Bursty, rng);
    const auto runWith = [&stream](double grace) {
        Scenario sc;
        sc.design = SystemDesign::McDlaB;
        sc.workload = "VGG-E";
        sc.serve = true;
        sc.replicas = 1;
        sc.globalBatch = 16;
        sc.sloMs = 10.0;
        ServingConfig cfg;
        cfg.base = sc;
        cfg.admitGraceFactor = grace;
        ServingCluster serving(cfg, stream);
        return serving.run();
    };
    const ServingReport open = runWith(0.0);
    EXPECT_EQ(open.droppedRequests(), 0u);
    EXPECT_EQ(open.completedRequests(), 256u);

    const ServingReport shed = runWith(2.0);
    EXPECT_GT(shed.droppedRequests(), 0u);
    EXPECT_EQ(shed.completedRequests() + shed.droppedRequests(), 256u);
    for (const RequestOutcome &outcome : shed.requests)
        if (outcome.dropped) {
            EXPECT_EQ(outcome.replica, -1);
        }
    // Shedding the hopeless tail tightens the served distribution.
    EXPECT_LT(shed.latencyPercentileMs(99.0),
              open.latencyPercentileMs(99.0));
}

// --------------------------------------- report tables and percentiles

TEST_F(ServingTest, ReportTablesCarryTheRunsAccounting)
{
    Random rng(9);
    const auto stream =
        synthesizeRequests(32, 1200.0, ArrivalKind::Poisson, rng);
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = "AlexNet";
    sc.serve = true;
    sc.replicas = 2;
    sc.globalBatch = 8;
    ServingConfig cfg;
    cfg.base = sc;
    ServingCluster serving(cfg, stream);
    const ServingReport report = serving.run();

    const ResultSet requests = report.requestTable();
    EXPECT_EQ(requests.rowCount(), 32u);
    EXPECT_EQ(requests.columns(), ServingReport::requestColumns());
    const ResultSet replicas = report.replicaTable();
    EXPECT_EQ(replicas.rowCount(), 2u);

    std::int64_t served = 0;
    for (const ReplicaStats &stats : report.replicas) {
        EXPECT_GT(stats.batches, 0);
        EXPECT_GT(stats.ewmaPerSampleSec, 0.0);
        served += stats.samplesServed;
    }
    std::int64_t submitted = 0;
    for (const Request &request : stream)
        submitted += request.samples;
    EXPECT_EQ(served, submitted);
    EXPECT_GT(report.throughputRps(), 0.0);
    EXPECT_GE(report.latencyPercentileMs(99.0),
              report.latencyPercentileMs(50.0));
}

TEST_F(ServingTest, ClusterJctPercentilesUseTheSharedHelper)
{
    ClusterReport report;
    for (double jct : {1.0, 2.0, 3.0, 4.0}) {
        JobOutcome outcome;
        outcome.completed = true;
        outcome.arrivalSec = 0.0;
        // One second of service each: slowdown == jct numerically.
        outcome.startSec = jct - 1.0;
        outcome.finishSec = jct;
        report.jobs.push_back(outcome);
    }
    EXPECT_DOUBLE_EQ(report.jctPercentileSec(50.0), 2.5);
    EXPECT_DOUBLE_EQ(report.jctPercentileSec(100.0), 4.0);
    EXPECT_DOUBLE_EQ(report.slowdownPercentile(50.0), 2.5);
}

} // anonymous namespace
} // namespace mcdla

