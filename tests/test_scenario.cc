/**
 * @file
 * Unit tests for the Scenario/Simulator facade: design/mode string
 * round-trips, option resolution (including the PCIe-generation
 * validation), workload-registry lookups, network caching, and
 * parallel-vs-serial sweep determinism.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/options.hh"
#include "core/scenario.hh"
#include "core/simulator.hh"
#include "sim/logging.hh"
#include "workloads/benchmarks.hh"
#include "workloads/registry.hh"

namespace mcdla
{
namespace
{

class ThrowingErrors : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

// ------------------------------------------------------- string round-trips

TEST(Scenario, DesignTokenRoundTripsForEveryDesign)
{
    for (SystemDesign design : allSystemDesigns()) {
        EXPECT_EQ(parseSystemDesign(systemDesignToken(design)), design);
        // The paper-style long names parse too.
        EXPECT_EQ(parseSystemDesign(systemDesignName(design)), design);
    }
}

TEST(Scenario, AllSystemDesignsCoversTheEvaluationSet)
{
    const std::vector<SystemDesign> &designs = allSystemDesigns();
    for (SystemDesign design : kAllDesigns)
        EXPECT_NE(std::find(designs.begin(), designs.end(), design),
                  designs.end());
    EXPECT_EQ(designs.size(), 8u);
}

TEST(Scenario, ModeTokenRoundTrips)
{
    for (ParallelMode mode : allParallelModes()) {
        EXPECT_EQ(parseParallelMode(parallelModeToken(mode)), mode);
        EXPECT_EQ(parseParallelMode(parallelModeName(mode)), mode);
    }
    EXPECT_EQ(allParallelModes().size(), 3u);
    EXPECT_EQ(parallelModeTokenList(), "dp, mp, pp");
}

class ScenarioErrors : public ThrowingErrors
{};

TEST_F(ScenarioErrors, UnknownDesignIsFatal)
{
    EXPECT_THROW(parseSystemDesign("warp-drive"), FatalError);
}

TEST_F(ScenarioErrors, UnknownModeIsFatal)
{
    EXPECT_THROW(parseParallelMode("tensor"), FatalError);
}

TEST(Scenario, LabelNamesTheRun)
{
    Scenario sc;
    sc.design = SystemDesign::DcDla;
    sc.workload = "VGG-E";
    sc.mode = ParallelMode::ModelParallel;
    sc.globalBatch = 128;
    EXPECT_EQ(sc.label(), "VGG-E/dc/mp/b128");
}

TEST(Scenario, SeedRoundTripsThroughLabelAndOptions)
{
    Scenario sc;
    sc.seed = 0;
    EXPECT_EQ(sc.label().find("seed"), std::string::npos);
    sc.seed = 99;
    EXPECT_NE(sc.label().find("/seed99"), std::string::npos);

    OptionParser opts("t", "test");
    Scenario::addOptions(opts);
    const char *argv[] = {"t", "--seed", "1234"};
    std::ostringstream err;
    ASSERT_TRUE(opts.parse(3, argv, err));
    const Scenario parsed = Scenario::fromOptions(opts);
    EXPECT_EQ(parsed.seed, 1234u);
    EXPECT_NE(parsed.label().find("/seed1234"), std::string::npos);
}

TEST(Scenario, ConfigStampsTheDesign)
{
    Scenario sc;
    sc.design = SystemDesign::HcDla;
    sc.base.fabric.numDevices = 4;
    const SystemConfig cfg = sc.config();
    EXPECT_EQ(cfg.design, SystemDesign::HcDla);
    EXPECT_EQ(cfg.fabric.numDevices, 4);
}

// ------------------------------------------------------------ PCIe fix

TEST(Scenario, PcieBandwidthDoublesPerGeneration)
{
    EXPECT_DOUBLE_EQ(pcieRawBandwidthForGen(3), 16.0 * kGB);
    EXPECT_DOUBLE_EQ(pcieRawBandwidthForGen(4), 32.0 * kGB);
    EXPECT_DOUBLE_EQ(pcieRawBandwidthForGen(5), 64.0 * kGB);
    // Gen 1-2 used to hit a negative shift (undefined behavior); they
    // are ordinary half-steps now.
    EXPECT_DOUBLE_EQ(pcieRawBandwidthForGen(2), 8.0 * kGB);
    EXPECT_DOUBLE_EQ(pcieRawBandwidthForGen(1), 4.0 * kGB);
}

TEST_F(ScenarioErrors, PcieGenerationOutOfRangeIsFatal)
{
    EXPECT_THROW(pcieRawBandwidthForGen(0), FatalError);
    EXPECT_THROW(pcieRawBandwidthForGen(7), FatalError);
    EXPECT_THROW(pcieRawBandwidthForGen(-3), FatalError);
}

// ------------------------------------------------------ option resolution

TEST(Scenario, FromOptionsResolvesTheSharedKnobs)
{
    OptionParser opts("t", "test");
    Scenario::addOptions(opts);
    const char *argv[] = {"t",           "--design",   "hc",
                          "--workload",  "VGG-E",      "--mode",
                          "mp",          "--batch",    "256",
                          "--devices",   "4",          "--pcie-gen",
                          "4",           "--socket-gbps", "80",
                          "--no-recompute"};
    std::ostringstream err;
    ASSERT_TRUE(opts.parse(static_cast<int>(std::size(argv)), argv,
                           err));
    const Scenario sc = Scenario::fromOptions(opts);
    EXPECT_EQ(sc.design, SystemDesign::HcDla);
    EXPECT_EQ(sc.workload, "VGG-E");
    EXPECT_EQ(sc.mode, ParallelMode::ModelParallel);
    EXPECT_EQ(sc.globalBatch, 256);
    EXPECT_EQ(sc.base.fabric.numDevices, 4);
    EXPECT_DOUBLE_EQ(sc.base.fabric.pcieRawBandwidth, 32.0 * kGB);
    EXPECT_DOUBLE_EQ(sc.base.fabric.socketBandwidth, 80.0 * kGB);
    EXPECT_FALSE(sc.base.recomputeCheapLayers);
}

TEST_F(ScenarioErrors, FromOptionsRejectsBadValues)
{
    {
        OptionParser opts("t", "test");
        Scenario::addOptions(opts);
        const char *argv[] = {"t", "--pcie-gen", "0"};
        std::ostringstream err;
        ASSERT_TRUE(opts.parse(3, argv, err));
        EXPECT_THROW(Scenario::fromOptions(opts), FatalError);
    }
    {
        OptionParser opts("t", "test");
        Scenario::addOptions(opts);
        const char *argv[] = {"t", "--batch", "0"};
        std::ostringstream err;
        ASSERT_TRUE(opts.parse(3, argv, err));
        EXPECT_THROW(Scenario::fromOptions(opts), FatalError);
    }
}

// ----------------------------------------------------- workload registry

TEST(WorkloadRegistry, TableThreeRowsAreRegisteredInOrder)
{
    const std::vector<std::string> expected = {
        "AlexNet",  "GoogLeNet",  "VGG-E",      "ResNet",
        "RNN-GEMV", "RNN-LSTM-1", "RNN-LSTM-2", "RNN-GRU"};
    const std::vector<std::string> names = benchmarkNames();
    EXPECT_EQ(names, expected);
    EXPECT_GE(WorkloadRegistry::instance().size(), expected.size());
}

TEST(WorkloadRegistry, LookupFindsRegisteredWorkloads)
{
    const WorkloadInfo *info =
        WorkloadRegistry::instance().find("ResNet");
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->depth, 34);
    EXPECT_FALSE(info->recurrent);
    const Network net = info->build();
    EXPECT_GT(net.totalParams(), 0);
}

TEST(WorkloadRegistry, UnknownNameReturnsNull)
{
    EXPECT_EQ(WorkloadRegistry::instance().find("NoSuchNet"), nullptr);
}

class RegistryErrors : public ThrowingErrors
{};

TEST_F(RegistryErrors, UnknownNameIsFatalWithKnownNamesListed)
{
    try {
        WorkloadRegistry::instance().at("NoSuchNet");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("NoSuchNet"), std::string::npos);
        EXPECT_NE(message.find("ResNet"), std::string::npos);
    }
}

TEST_F(RegistryErrors, DuplicateRegistrationIsFatal)
{
    WorkloadInfo dup;
    dup.name = "AlexNet";
    dup.build = [] { return builders::buildAlexNet(); };
    EXPECT_THROW(WorkloadRegistry::instance().add(std::move(dup)),
                 FatalError);
}

// ----------------------------------------------------------- simulator

TEST(Simulator, CachesNetworksByName)
{
    Simulator sim;
    const auto a = sim.network("AlexNet");
    const auto b = sim.network("AlexNet");
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), sim.network("VGG-E").get());
}

TEST(Simulator, RunMatchesManualAssembly)
{
    LogConfig::verbose = false;
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = "AlexNet";
    sc.globalBatch = 64;

    Simulator sim;
    const IterationResult facade = sim.run(sc);

    EventQueue eq;
    System system(eq, sc.config());
    TrainingSession session(system, *sim.network("AlexNet"), sc.mode,
                            sc.globalBatch);
    const IterationResult manual = session.run();

    EXPECT_EQ(facade.makespan, manual.makespan);
    EXPECT_EQ(facade.eventsExecuted, manual.eventsExecuted);
    EXPECT_DOUBLE_EQ(facade.hostBytes, manual.hostBytes);
}

// -------------------------------------------------------------- sweeps

std::vector<Scenario>
sweepGrid()
{
    // 2 workloads x 3 designs x 2 modes = 12 scenarios (>= 8).
    std::vector<Scenario> scenarios;
    for (const char *workload : {"AlexNet", "RNN-LSTM-1"})
        for (SystemDesign design :
             {SystemDesign::DcDla, SystemDesign::HcDla,
              SystemDesign::McDlaB})
            for (ParallelMode mode : {ParallelMode::DataParallel,
                                      ParallelMode::ModelParallel}) {
                Scenario sc;
                sc.design = design;
                sc.workload = workload;
                sc.mode = mode;
                sc.globalBatch = 64;
                scenarios.push_back(std::move(sc));
            }
    return scenarios;
}

TEST(SweepRunner, ParallelSweepMatchesSerialByteForByte)
{
    LogConfig::verbose = false;
    const std::vector<Scenario> scenarios = sweepGrid();
    ASSERT_GE(scenarios.size(), 8u);

    SweepRunner serial(SweepConfig{/*threads=*/1, /*progress=*/false});
    SweepRunner parallel(SweepConfig{/*threads=*/4,
                                     /*progress=*/false});
    const ResultSet a = serial.runToResults(scenarios);
    const ResultSet b = parallel.runToResults(scenarios);

    ASSERT_EQ(a.rowCount(), scenarios.size());
    ASSERT_EQ(b.rowCount(), scenarios.size());

    std::ostringstream csv_a, csv_b, json_a, json_b;
    a.writeCsv(csv_a);
    b.writeCsv(csv_b);
    a.writeJson(json_a);
    b.writeJson(json_b);
    EXPECT_EQ(csv_a.str(), csv_b.str());
    EXPECT_EQ(json_a.str(), json_b.str());
}

TEST(SweepRunner, ResultsArriveInScenarioOrder)
{
    LogConfig::verbose = false;
    std::vector<Scenario> scenarios;
    for (std::int64_t batch : {32, 64, 128, 256}) {
        Scenario sc;
        sc.workload = "AlexNet";
        sc.globalBatch = batch;
        scenarios.push_back(std::move(sc));
    }
    SweepRunner runner(SweepConfig{/*threads=*/3, /*progress=*/false});
    const ResultSet results = runner.runToResults(scenarios);
    ASSERT_EQ(results.rowCount(), 4u);
    for (std::size_t r = 0; r < results.rowCount(); ++r)
        EXPECT_EQ(std::get<std::int64_t>(results.cell(r, 3)),
                  scenarios[r].globalBatch);
}

TEST(SweepRunner, CursorChecksConsumeLoopAlignment)
{
    LogConfig::verbose = false;
    std::vector<Scenario> scenarios(2);
    scenarios[0].workload = "AlexNet";
    scenarios[0].design = SystemDesign::DcDla;
    scenarios[0].globalBatch = 64;
    scenarios[1].workload = "AlexNet";
    scenarios[1].design = SystemDesign::McDlaB;
    scenarios[1].globalBatch = 64;
    SweepRunner runner;
    const std::vector<IterationResult> results = runner.run(scenarios);

    SweepCursor good(scenarios, results);
    EXPECT_GT(good.next("AlexNet", SystemDesign::DcDla,
                        ParallelMode::DataParallel)
                  .makespan,
              0u);
    EXPECT_GT(good.next("AlexNet", SystemDesign::McDlaB,
                        ParallelMode::DataParallel)
                  .makespan,
              0u);

    LogConfig::throwOnError = true;
    SweepCursor drifted(scenarios, results);
    EXPECT_THROW(drifted.next("AlexNet", SystemDesign::McDlaB,
                              ParallelMode::DataParallel),
                 PanicError);
    SweepCursor spent(scenarios, results);
    spent.next("AlexNet", SystemDesign::DcDla,
               ParallelMode::DataParallel);
    spent.next("AlexNet", SystemDesign::McDlaB,
               ParallelMode::DataParallel);
    EXPECT_THROW(spent.next("AlexNet", SystemDesign::DcDla,
                            ParallelMode::DataParallel),
                 PanicError);
    LogConfig::throwOnError = false;
}

TEST(SweepRunner, EmptySweepIsFine)
{
    SweepRunner runner;
    EXPECT_TRUE(runner.run({}).empty());
    EXPECT_EQ(runner.runToResults({}).rowCount(), 0u);
}

class SweepErrors : public ThrowingErrors
{};

TEST_F(SweepErrors, WorkerErrorsSurfaceAfterThePoolDrains)
{
    std::vector<Scenario> scenarios(2);
    scenarios[0].workload = "AlexNet";
    scenarios[0].globalBatch = 64;
    scenarios[1].workload = "NoSuchNet";
    SweepRunner runner(SweepConfig{/*threads=*/2, /*progress=*/false});
    EXPECT_THROW(runner.run(scenarios), FatalError);
}

} // anonymous namespace
} // namespace mcdla
