/**
 * @file
 * Event-queue backend equivalence and slot-pool regression tests.
 *
 * The heap and calendar backends must produce the *exact* same global
 * event order — not merely the same final state — because the
 * determinism audit hashes the executed (tick, label) stream. The
 * differential fuzzer here drives both backends through identical
 * randomized schedule/cancel/weak workloads (same-tick bursts, dense
 * ranges, sparse jumps that force the calendar's year scan and
 * resize machinery) and requires bit-identical stream hashes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/profiler.hh"
#include "sim/random.hh"

namespace mcdla
{
namespace
{

/** Outcome summary of one randomized run; equal across backends. */
struct FuzzResult
{
    std::uint64_t streamHash = 0;
    std::uint64_t executed = 0;
    std::uint64_t descheduled = 0;
    std::uint64_t weakFired = 0;
    Tick finalNow = 0;

    bool
    operator==(const FuzzResult &other) const
    {
        return streamHash == other.streamHash
               && executed == other.executed
               && descheduled == other.descheduled
               && weakFired == other.weakFired
               && finalNow == other.finalNow;
    }
};

/** Self-scheduling randomized workload over one EventQueue. */
class Fuzzer
{
  public:
    Fuzzer(EventQueueBackendKind kind, std::uint64_t seed)
        : _eq(kind), _rng(seed)
    {
        _eq.setProfiler(&_prof);
    }

    FuzzResult
    run()
    {
        // A weak heartbeat that reschedules itself unconditionally:
        // it must fire while ordinary events exist and be discarded
        // (not executed) the moment only weak events remain.
        scheduleHeartbeat();
        spawn(64);
        _eq.run();
        EXPECT_EQ(_eq.weakCount(), 0u);
        EXPECT_EQ(_eq.pendingCount(), 0u);
        FuzzResult result;
        result.streamHash = _prof.streamHash();
        result.executed = _eq.executedCount();
        result.descheduled = _descheduled;
        result.weakFired = _weakFired;
        result.finalNow = _eq.now();
        return result;
    }

  private:
    void
    scheduleHeartbeat()
    {
        _eq.scheduleWeak(_eq.now() + 1000,
                         [this] {
                             ++_weakFired;
                             scheduleHeartbeat();
                         },
                         "heartbeat");
    }

    static const char *
    labelFor(std::uint64_t pick)
    {
        static const char *const kLabels[] = {"alpha", "beta", "gamma",
                                              "delta"};
        return kLabels[pick & 3];
    }

    /** Tick offsets span four regimes so the calendar queue exercises
        same-bucket FIFO, dense buckets, resizes, and the sparse
        year-scan fallback. */
    Tick
    randomDelta()
    {
        switch (_rng.below(10)) {
          case 0:
            return 0; // same-tick burst: FIFO order must hold
          case 1:
          case 2:
          case 3:
          case 4:
          case 5:
          case 6:
            return static_cast<Tick>(_rng.between(1, 256));
          case 7:
          case 8:
            return static_cast<Tick>(_rng.between(1, 100000));
          default:
            // Sparse jump: empties a calendar "year".
            return static_cast<Tick>(_rng.between(10000000, 500000000));
        }
    }

    void
    spawn(std::uint64_t fanout)
    {
        for (std::uint64_t i = 0; i < fanout && _budget > 0; ++i) {
            --_budget;
            const EventId id =
                _eq.schedule(_eq.now() + randomDelta(),
                             [this] { step(); },
                             labelFor(_rng.next()));
            _ids.push_back(id);
        }
    }

    void
    step()
    {
        // Cancel a random earlier handle now and then; many are stale
        // (already executed or cancelled) and must be refused — the
        // refusal pattern is part of the cross-backend contract.
        if (!_ids.empty() && _rng.below(4) == 0) {
            const EventId victim =
                _ids[static_cast<std::size_t>(_rng.below(_ids.size()))];
            if (_eq.deschedule(victim))
                ++_descheduled;
        }
        spawn(_rng.below(4));
    }

    EventQueue _eq;
    DesProfiler _prof;
    Random _rng;
    std::uint64_t _budget = 20000;
    std::vector<EventId> _ids;
    std::uint64_t _descheduled = 0;
    std::uint64_t _weakFired = 0;
};

TEST(EventBackendDifferential, HeapAndCalendarProduceIdenticalStreams)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const FuzzResult heap =
            Fuzzer(EventQueueBackendKind::Heap, seed).run();
        const FuzzResult calendar =
            Fuzzer(EventQueueBackendKind::Calendar, seed).run();
        EXPECT_TRUE(heap == calendar)
            << "seed " << seed << ": heap hash " << heap.streamHash
            << " (" << heap.executed << " events) vs calendar hash "
            << calendar.streamHash << " (" << calendar.executed
            << " events)";
        // A degenerate run would vacuously pass; require real work.
        EXPECT_GT(heap.executed, 10000u) << "seed " << seed;
        EXPECT_GT(heap.descheduled, 0u) << "seed " << seed;
        EXPECT_GT(heap.weakFired, 0u) << "seed " << seed;
    }
}

TEST(EventBackendDifferential, BackendTokensRoundTrip)
{
    EXPECT_EQ(parseEventQueueBackendKind("heap"),
              EventQueueBackendKind::Heap);
    EXPECT_EQ(parseEventQueueBackendKind("calendar"),
              EventQueueBackendKind::Calendar);
    EXPECT_STREQ(eventQueueBackendToken(EventQueueBackendKind::Heap),
                 "heap");
    EXPECT_STREQ(
        eventQueueBackendToken(EventQueueBackendKind::Calendar),
        "calendar");
}

// ------------------------------------------------------------ slot pool

TEST(EventQueuePool, PoolStaysFlatAcrossDrainsAndResets)
{
    EventQueue eq;
    const auto burst = [&eq] {
        for (Tick i = 0; i < 100; ++i)
            eq.scheduleAfter(i, [] {});
        eq.run();
    };
    // Warm the pool to its high-water mark.
    for (int round = 0; round < 10; ++round)
        burst();
    const std::size_t high_water = eq.poolSlots();
    EXPECT_LE(high_water, 128u); // ~peak concurrency, not event count
    // Long drains recycle slots through the free list...
    for (int round = 0; round < 200; ++round)
        burst();
    EXPECT_EQ(eq.poolSlots(), high_water);
    // ...and reset() releases into the same pool rather than growing.
    for (int round = 0; round < 200; ++round) {
        for (Tick i = 0; i < 50; ++i)
            eq.scheduleAfter(100 + i, [] {});
        eq.runUntil(120);
        eq.reset();
    }
    EXPECT_EQ(eq.poolSlots(), high_water);
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueuePool, DescheduleOfExecutedIdIsRefused)
{
    EventQueue eq;
    int fired = 0;
    const EventId executed = eq.schedule(10, [&fired] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    // The slot retired at pop time: the stale handle is refused...
    EXPECT_FALSE(eq.deschedule(executed));
    // ...even after the slot is recycled by a new event (the bumped
    // generation keeps the stale id from aliasing its successor).
    const EventId successor = eq.schedule(20, [&fired] { ++fired; });
    EXPECT_FALSE(eq.deschedule(executed));
    EXPECT_TRUE(eq.deschedule(successor));
    EXPECT_FALSE(eq.deschedule(successor)); // already cancelled
    eq.run();
    EXPECT_EQ(fired, 1);
}

} // anonymous namespace
} // namespace mcdla
