/**
 * @file
 * TraceSink / MetricRegistry / DesProfiler / weak-event unit tests.
 *
 * The TraceSink tests round-trip the emitted Chrome-tracing JSON
 * through a strict recursive-descent parser (no tolerance for bare
 * control characters, trailing commas, or unquoted keys), so every
 * escaping bug is a test failure here before it is a blank Perfetto
 * tab for a user.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/metrics.hh"
#include "sim/profiler.hh"
#include "sim/trace.hh"
#include "sim/units.hh"

using namespace mcdla;

namespace
{

// ------------------------------------------ strict JSON parser (test)

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key " + key);
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return fields.find(key) != fields.end();
    }
};

class StrictJsonParser
{
  public:
    explicit StrictJsonParser(const std::string &text) : _text(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (_pos != _text.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at offset "
                                 + std::to_string(_pos) + ": " + why);
    }

    void
    skipWs()
    {
        while (_pos < _text.size()
               && (_text[_pos] == ' ' || _text[_pos] == '\n'
                   || _text[_pos] == '\r' || _text[_pos] == '\t'))
            ++_pos;
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::String;
            v.text = parseString();
            return v;
        }
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            expectWord("null");
            return JsonValue{};
        }
        return parseNumber();
    }

    void
    expectWord(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (_pos >= _text.size() || _text[_pos] != *p)
                fail(std::string("expected ") + word);
            ++_pos;
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (peek() == 't') {
            expectWord("true");
            v.boolean = true;
        } else {
            expectWord("false");
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (_pos < _text.size()
               && (std::isdigit(static_cast<unsigned char>(_text[_pos]))
                   != 0
                   || _text[_pos] == '.' || _text[_pos] == 'e'
                   || _text[_pos] == 'E' || _text[_pos] == '+'
                   || _text[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            fail("bad number");
        JsonValue v;
        v.kind = JsonValue::Number;
        v.number = std::stod(_text.substr(start, _pos - start));
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                fail("unterminated string");
            const char c = _text[_pos];
            if (static_cast<unsigned char>(c) < 0x20)
                fail("bare control character in string");
            ++_pos;
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = peek();
            ++_pos;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    fail("bad \\u escape");
                const std::string hex = _text.substr(_pos, 4);
                _pos += 4;
                const int code = std::stoi(hex, nullptr, 16);
                if (code > 0xff)
                    out += '?'; // non-Latin escapes: presence suffices
                else
                    out += static_cast<char>(code);
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Array;
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Object;
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.fields.emplace(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

JsonValue
parseTrace(const TraceSink &trace)
{
    std::ostringstream os;
    trace.write(os);
    const std::string text = os.str();
    StrictJsonParser parser(text);
    return parser.parse();
}

// ------------------------------------------------------- TraceSink

TEST(TraceSink, AdversarialLabelsRoundTrip)
{
    const std::vector<std::string> evil = {
        "quote\"inside",
        "back\\slash",
        "new\nline and\ttab",
        std::string("nul\x01mid"),
        "utf8 \xc3\xa9\xe6\xbc\xa2",
        "curly {braces} and [brackets], \"quoted\"",
    };
    TraceSink trace;
    Tick at = 0;
    for (const std::string &label : evil) {
        trace.addSpan(label, label, label, at, 100);
        trace.addInstant("proc\"x", label, label, at + 50);
        at += 1000;
    }

    const JsonValue root = parseTrace(trace);
    const JsonValue &events = root.at("traceEvents");
    ASSERT_EQ(events.kind, JsonValue::Array);

    // Control chars below 0x20 decode back to themselves via \u00XX,
    // so every original label must survive the round-trip verbatim.
    std::set<std::string> names;
    for (const JsonValue &event : events.items)
        names.insert(event.at("name").text);
    for (const std::string &label : evil)
        EXPECT_TRUE(names.count(label) == 1)
            << "label lost in round-trip: " << label;
}

TEST(TraceSink, FlowEventsPairAndCoincideWithSpans)
{
    TraceSink trace;
    trace.addSpan("p", "t", "producer", 100, 50);
    trace.addSpan("p", "t", "consumer", 400, 50);
    const std::uint64_t flow = trace.newFlow();
    trace.flowBegin("p", "t", "link", 100, flow);
    trace.flowEnd("p", "t", "link", 400, flow);

    const JsonValue root = parseTrace(trace);
    std::map<double, double> begins; // id -> ts
    std::map<double, double> ends;
    for (const JsonValue &event : root.at("traceEvents").items) {
        const std::string &ph = event.at("ph").text;
        if (ph == "s")
            begins[event.at("id").number] = event.at("ts").number;
        else if (ph == "f") {
            ends[event.at("id").number] = event.at("ts").number;
            // Perfetto requires bp:"e" on flow ends bound to slices.
            EXPECT_EQ(event.at("bp").text, "e");
        }
    }
    ASSERT_EQ(begins.size(), 1u);
    ASSERT_EQ(ends.size(), 1u);
    EXPECT_EQ(begins.begin()->first, ends.begin()->first);
    EXPECT_LT(begins.begin()->second, ends.begin()->second);
}

TEST(TraceSink, CounterSeriesKeepsOrderAndValues)
{
    TraceSink trace;
    const double values[] = {0.0, 1.5, 1.5, 3.25, 7.0};
    Tick at = 0;
    for (double v : values) {
        trace.addCounter("metrics", "queue_depth", at, v);
        at += 100 * ticksPerUs;
    }

    const JsonValue root = parseTrace(trace);
    std::vector<std::pair<double, double>> series;
    for (const JsonValue &event : root.at("traceEvents").items) {
        if (event.at("ph").text != "C")
            continue;
        EXPECT_EQ(event.at("name").text, "queue_depth");
        series.emplace_back(event.at("ts").number,
                            event.at("args").at("value").number);
    }
    ASSERT_EQ(series.size(), 5u);
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GT(series[i].first, series[i - 1].first)
            << "counter timestamps must increase";
    for (std::size_t i = 0; i < series.size(); ++i)
        EXPECT_DOUBLE_EQ(series[i].second, values[i]);
}

TEST(TraceSink, DeterministicPidAndTrackAssignment)
{
    auto emit = [](TraceSink &trace) {
        trace.addSpan("device", "dev0.compute", "conv1", 0, 10);
        trace.addSpan("vmem", "dev0.dma", "offload", 5, 10);
        trace.addCounter("metrics", "util", 0, 0.5);
        trace.addSpan("collective", "rings", "allreduce", 20, 10);
        trace.addInstant("cluster", "jobs", "arrive", 1);
    };
    TraceSink a, b;
    emit(a);
    emit(b);
    std::ostringstream sa, sb;
    a.write(sa);
    b.write(sb);
    EXPECT_EQ(sa.str(), sb.str())
        << "identical event sequences must serialize identically";

    // Metadata must name every process exactly once.
    const JsonValue root = parseTrace(a);
    std::set<std::string> procs;
    std::set<double> pids;
    for (const JsonValue &event : root.at("traceEvents").items) {
        pids.insert(event.at("pid").number);
        if (event.at("ph").text == "M"
            && event.at("name").text == "process_name") {
            EXPECT_TRUE(
                procs.insert(event.at("args").at("name").text).second);
        }
    }
    EXPECT_EQ(procs.size(), 5u);
    EXPECT_EQ(pids.size(), 5u);
    EXPECT_EQ(a.processCount(), 5u);
}

TEST(TraceSink, CategoryFilterDropsDisabledEvents)
{
    TraceSink trace;
    trace.enableCategories({"dma"});
    EXPECT_TRUE(trace.categoryEnabled("dma"));
    EXPECT_FALSE(trace.categoryEnabled("op"));
    trace.addSpan("device", "dev0.compute", "conv1", 0, 10, "op");
    trace.addSpan("vmem", "dev0.dma", "offload", 0, 10, "dma");
    const JsonValue root = parseTrace(trace);
    std::size_t spans = 0;
    for (const JsonValue &event : root.at("traceEvents").items)
        if (event.at("ph").text == "X") {
            ++spans;
            EXPECT_EQ(event.at("cat").text, "dma");
        }
    EXPECT_EQ(spans, 1u);
}

TEST(TraceSink, LegacyTwoStringOverloadsLandOnSimProcess)
{
    TraceSink trace;
    trace.addSpan("dev0.compute", "conv1", 0, 10);
    trace.addInstant("dev0.compute", "mark", 5);
    const JsonValue root = parseTrace(trace);
    bool found = false;
    for (const JsonValue &event : root.at("traceEvents").items)
        if (event.at("ph").text == "M"
            && event.at("name").text == "process_name"
            && event.at("args").at("name").text == "sim")
            found = true;
    EXPECT_TRUE(found);
    EXPECT_EQ(trace.eventCount(), 2u);
}

// ------------------------------------------------------ weak events

TEST(EventQueue, WeakEventsDoNotExtendTheRun)
{
    EventQueue eq;
    int real = 0;
    int weak = 0;
    eq.schedule(100, [&] { ++real; }, "real");
    // A self-rescheduling weak chain: must be discarded the moment
    // only weak events remain, without executing or advancing now().
    std::function<void()> tick = [&] {
        ++weak;
        eq.scheduleWeak(eq.now() + 30, tick, "weak_tick");
    };
    eq.scheduleWeak(30, tick, "weak_tick");
    eq.run();
    EXPECT_EQ(real, 1);
    EXPECT_EQ(weak, 3); // ticks 30, 60, 90 run; 120 is discarded
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, WeakOnlyQueueDrainsImmediately)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleWeak(50, [&] { ++fired; }, "weak");
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
}

// ---------------------------------------------------- MetricRegistry

TEST(MetricRegistry, SamplesPeriodicallyAndStopsWithTheRun)
{
    EventQueue eq;
    MetricRegistry metrics(100 * ticksPerUs);
    int gauge = 0;
    metrics.add("gauge", [&] { return static_cast<double>(gauge); });
    eq.schedule(350 * ticksPerUs, [&] { gauge = 7; }, "bump");
    metrics.start(eq);
    eq.run();
    // Samples at t=0, 100, 200, 300 us; the t=400 weak sample is
    // discarded because only it remained after the last real event.
    ASSERT_EQ(metrics.sampleCount(), 4u);
    EXPECT_EQ(eq.now(), 350 * ticksPerUs);
    EXPECT_DOUBLE_EQ(metrics.samples().back().values[0], 0.0);

    const ResultSet table = metricsTable(metrics);
    EXPECT_EQ(table.rowCount(), 4u);
    EXPECT_EQ(table.columns().size(), 2u);
    EXPECT_EQ(table.columns()[1], "gauge");
}

TEST(MetricRegistry, MirrorsSamplesAsTraceCounters)
{
    EventQueue eq;
    TraceSink trace;
    MetricRegistry metrics(100 * ticksPerUs);
    metrics.add("depth", [&eq] {
        return static_cast<double>(eq.pendingCount());
    });
    metrics.attachTrace(&trace);
    eq.schedule(250 * ticksPerUs, [] {}, "real");
    metrics.start(eq);
    eq.run();
    const JsonValue root = parseTrace(trace);
    std::size_t counters = 0;
    for (const JsonValue &event : root.at("traceEvents").items)
        if (event.at("ph").text == "C")
            ++counters;
    EXPECT_EQ(counters, metrics.sampleCount());
    EXPECT_GE(counters, 3u);
}

// ------------------------------------------------------- DesProfiler

TEST(DesProfiler, AttributesWallTimeByLabel)
{
    EventQueue eq;
    DesProfiler profiler;
    eq.setProfiler(&profiler);
    for (int i = 0; i < 10; ++i)
        eq.schedule(static_cast<Tick>(i), [] {}, "tick");
    const EventId cancelled = eq.schedule(99, [] {}, "doomed");
    eq.deschedule(cancelled);
    eq.run();

    EXPECT_EQ(profiler.eventsExecuted(), 10u);
    EXPECT_EQ(profiler.schedules(), 11u);
    EXPECT_EQ(profiler.deschedules(), 1u);
    EXPECT_GE(profiler.peakHeapDepth(), 10u);
    ASSERT_EQ(profiler.labels().count("tick"), 1u);
    EXPECT_EQ(profiler.labels().at("tick").count, 10u);
    EXPECT_EQ(profiler.labels().count("doomed"), 0u);

    const auto top = profiler.topLabels(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].first, "tick");

    std::ostringstream report;
    profiler.report(report);
    EXPECT_NE(report.str().find("events executed"), std::string::npos);
    EXPECT_NE(report.str().find("tick"), std::string::npos);
}

// ------------------------------------------------------- json escape

TEST(JsonEscape, EscapesEverythingStrictJsonRejects)
{
    EXPECT_EQ(jsonEscaped("plain"), "plain");
    EXPECT_EQ(jsonEscaped("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscaped("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscaped("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscaped(std::string("a\x01") + "b"), "a\\u0001b");
    std::ostringstream os;
    jsonNumber(os, 1.5);
    os << ' ';
    jsonNumber(os, std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(os.str(), "1.5 null");
}

} // namespace
