/**
 * @file
 * Unit tests for the switched (Fig 15) scale-out fabric and the
 * MC-DLA(X) design point.
 */

#include <gtest/gtest.h>

#include "interconnect/fabrics.hh"
#include "sim/logging.hh"
#include "system/training_session.hh"
#include "workloads/benchmarks.hh"

namespace mcdla
{
namespace
{

FabricConfig
switchedConfig(int devices, int radix = 0)
{
    FabricConfig cfg;
    cfg.numDevices = devices;
    cfg.switchRadix = radix > 0 ? radix : 2 * devices;
    return cfg;
}

TEST(SwitchFabric, HasOneRingPerPlane)
{
    EventQueue eq;
    auto fab = buildMcdlaSwitchFabric(eq, switchedConfig(8));
    // 2 * numRings planes, one unidirectional ring each.
    ASSERT_EQ(fab->rings().size(), 6u);
    for (const RingPath &ring : fab->rings()) {
        EXPECT_EQ(ring.stageCount(), 16);
        // Every hop crosses node->switch and switch->node channels.
        for (const Route &hop : ring.hops)
            EXPECT_EQ(hop.hops.size(), 2u);
    }
}

TEST(SwitchFabric, RadixLimitIsEnforced)
{
    LogConfig::throwOnError = true;
    EventQueue eq;
    // 18-port NVSwitch-class plane seats 8 D + 8 M but not 16 + 16.
    EXPECT_NO_THROW(buildMcdlaSwitchFabric(eq, switchedConfig(8, 18)));
    EXPECT_THROW(buildMcdlaSwitchFabric(eq, switchedConfig(16, 18)),
                 FatalError);
    EXPECT_NO_THROW(
        buildMcdlaSwitchFabric(eq, switchedConfig(16, 36)));
    LogConfig::throwOnError = false;
}

TEST(SwitchFabric, VmemMatchesRingSemantics)
{
    EventQueue eq;
    auto fab = buildMcdlaSwitchFabric(eq, switchedConfig(8));
    for (int d = 0; d < 8; ++d) {
        const auto &paths = fab->vmemPaths(d);
        ASSERT_EQ(paths.size(), 2u);
        EXPECT_EQ(paths[0].targetIndex, d);
        EXPECT_EQ(paths[1].targetIndex, (d + 7) % 8);
        // N/2 routes per side; writes go link -> switch -> DIMMs.
        EXPECT_EQ(paths[0].writeRoutes.size(), 3u);
        EXPECT_EQ(paths[1].writeRoutes.size(), 3u);
        EXPECT_EQ(paths[0].writeRoutes[0].hops.size(), 3u);
    }
}

TEST(SwitchFabric, OffloadBandwidthMatchesDirectRing)
{
    // The switch adds latency, not bandwidth loss: a large BW_AWARE
    // offload should sustain ~150 GB/s like the direct ring.
    EventQueue eq;
    auto fab = buildMcdlaSwitchFabric(eq, switchedConfig(8));
    DmaEngine dma(eq, "dma0", fab->vmemPaths(0));
    Tick done = 0;
    dma.transfer(300e6, DmaDirection::LocalToRemote,
                 [&] { done = eq.now(); });
    eq.run();
    const double gbps = 300e6 / ticksToSeconds(done) / kGB;
    EXPECT_GT(gbps, 130.0);
    EXPECT_LE(gbps, 151.0);
}

TEST(SwitchFabric, ScalesToThirtyTwoDevices)
{
    EventQueue eq;
    auto fab = buildMcdlaSwitchFabric(eq, switchedConfig(32, 64));
    ASSERT_EQ(fab->rings().size(), 6u);
    for (const RingPath &ring : fab->rings())
        EXPECT_EQ(ring.stageCount(), 64);
    EXPECT_EQ(fab->memNodeChannels().size(), 32u);
}

TEST(SwitchFabric, SingleDeviceUsesAllPlanes)
{
    EventQueue eq;
    auto fab = buildMcdlaSwitchFabric(eq, switchedConfig(1, 18));
    EXPECT_TRUE(fab->rings().empty());
    ASSERT_EQ(fab->vmemPaths(0).size(), 1u);
    EXPECT_EQ(fab->vmemPaths(0)[0].writeRoutes.size(), 6u);
}

TEST(McdlaX, SystemComposesAndTrains)
{
    const Network net = buildBenchmark("AlexNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaX;
    System system(eq, cfg);
    EXPECT_EQ(cfg.pagePolicy(), PagePolicy::BwAware);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            128);
    const IterationResult r = session.run();
    EXPECT_GT(r.makespan, 0u);
    EXPECT_DOUBLE_EQ(r.hostBytes, 0.0);
}

TEST(McdlaX, SlightlySlowerThanDirectRing)
{
    // Switch forwarding costs latency but not bandwidth.
    const Network net = buildBenchmark("AlexNet");
    double direct = 0.0, switched = 0.0;
    for (SystemDesign design :
         {SystemDesign::McDlaB, SystemDesign::McDlaX}) {
        EventQueue eq;
        SystemConfig cfg;
        cfg.design = design;
        System system(eq, cfg);
        TrainingSession session(system, net,
                                ParallelMode::DataParallel, 256);
        (design == SystemDesign::McDlaB ? direct : switched) =
            session.run().iterationSeconds();
    }
    EXPECT_GE(switched, direct * 0.98);
    EXPECT_LT(switched, direct * 1.35);
}

TEST(McdlaX, ScalesBeyondEightDevices)
{
    const Network net = buildBenchmark("AlexNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaX;
    cfg.fabric.numDevices = 16;
    cfg.fabric.switchRadix = 32;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            16 * 64);
    const IterationResult r = session.run();
    EXPECT_GT(r.makespan, 0u);
    EXPECT_GT(static_cast<double>(system.totalExposedMemory()), 20e12);
}

} // anonymous namespace
} // namespace mcdla
