/**
 * @file
 * Unit tests for the interconnect: channels, flows, and the fabric
 * builders' ring/hop-count properties from Section III-B.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "interconnect/channel.hh"
#include "interconnect/fabrics.hh"
#include "interconnect/flow.hh"
#include "sim/logging.hh"

namespace mcdla
{
namespace
{

// --------------------------------------------------------------- channel

TEST(Channel, TransferTakesBytesOverBandwidth)
{
    EventQueue eq;
    Channel ch(eq, "c", 25.0 * kGB, 0);
    Tick done = 0;
    ch.submit(25e9, [&] { done = eq.now(); }); // exactly one second
    eq.run();
    EXPECT_EQ(done, ticksPerSec);
    EXPECT_DOUBLE_EQ(ch.bytesTransferred(), 25e9);
}

TEST(Channel, LatencyDelaysDeliveryNotOccupancy)
{
    EventQueue eq;
    const Tick lat = 500 * ticksPerNs;
    Channel ch(eq, "c", 1e9, lat);
    Tick first = 0, second = 0;
    ch.submit(1e3, [&] { first = eq.now(); });  // 1 us occupancy
    ch.submit(1e3, [&] { second = eq.now(); });
    eq.run();
    EXPECT_EQ(first, ticksPerUs + lat);
    // Back-to-back: second transfer starts at 1 us, not after delivery.
    EXPECT_EQ(second, 2 * ticksPerUs + lat);
}

TEST(Channel, FifoOrdering)
{
    EventQueue eq;
    Channel ch(eq, "c", 1e9, 0);
    std::vector<int> order;
    ch.submit(100, [&] { order.push_back(1); });
    ch.submit(100, [&] { order.push_back(2); });
    ch.submit(100, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, BusyTicksAccumulate)
{
    EventQueue eq;
    Channel ch(eq, "c", 1e9, 0);
    ch.submit(1e3, nullptr);
    ch.submit(1e3, nullptr);
    eq.run();
    EXPECT_EQ(ch.busyTicks(), 2 * ticksPerUs);
    EXPECT_NEAR(ch.utilization(2 * ticksPerUs), 1.0, 1e-9);
}

TEST(Channel, PeakTrackingMeasuresSaturatedWindow)
{
    EventQueue eq;
    Channel ch(eq, "c", 10.0 * kGB, 0);
    ch.enablePeakTracking(100 * ticksPerUs);
    // Saturate for 1 ms: peak windowed bandwidth == channel bandwidth.
    for (int i = 0; i < 100; ++i)
        ch.submit(100e3, nullptr); // 10 MB total over 1 ms
    eq.run();
    EXPECT_NEAR(ch.peakBandwidth(), 10.0 * kGB, 0.15 * 10.0 * kGB);
}

TEST(Channel, ResetStatsClearsCounters)
{
    EventQueue eq;
    Channel ch(eq, "c", 1e9, 0);
    ch.submit(1e3, nullptr);
    eq.run();
    ch.resetStats();
    EXPECT_DOUBLE_EQ(ch.bytesTransferred(), 0.0);
    EXPECT_EQ(ch.busyTicks(), 0u);
}

TEST(Channel, QueueDepthVisible)
{
    EventQueue eq;
    Channel ch(eq, "c", 1e9, 0);
    ch.submit(1e3, nullptr);
    ch.submit(1e3, nullptr);
    ch.submit(1e3, nullptr);
    EXPECT_EQ(ch.queueDepth(), 2u); // one in flight, two queued
    eq.run();
    EXPECT_EQ(ch.queueDepth(), 0u);
}

// ------------------------------------------------------------------ flow

TEST(Flow, SingleRouteDeliversOnce)
{
    EventQueue eq;
    Channel a(eq, "a", 1e9, 0);
    Channel b(eq, "b", 1e9, 0);
    int done = 0;
    sendFlow({Route{{&a, &b}}}, 10e3, 1e3, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 1);
    EXPECT_DOUBLE_EQ(a.bytesTransferred(), 10e3);
    EXPECT_DOUBLE_EQ(b.bytesTransferred(), 10e3);
}

TEST(Flow, ParallelRoutesSplitTraffic)
{
    EventQueue eq;
    Channel a(eq, "a", 1e9, 0);
    Channel b(eq, "b", 1e9, 0);
    bool done = false;
    sendFlow({Route{{&a}}, Route{{&b}}}, 10e3, 1e3, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(a.bytesTransferred(), 5e3);
    EXPECT_DOUBLE_EQ(b.bytesTransferred(), 5e3);
}

TEST(Flow, TwoRoutesHalveCompletionTime)
{
    EventQueue eq;
    Channel a(eq, "a", 1e9, 0);
    Channel b(eq, "b", 1e9, 0);
    Tick one_route = 0, two_routes = 0;
    sendFlow({Route{{&a}}}, 1e6, 1e4, [&] { one_route = eq.now(); });
    eq.run();
    eq.reset();
    Channel c(eq, "c", 1e9, 0);
    Channel d(eq, "d", 1e9, 0);
    sendFlow({Route{{&c}}, Route{{&d}}}, 1e6, 1e4,
             [&] { two_routes = eq.now(); });
    eq.run();
    EXPECT_NEAR(static_cast<double>(two_routes),
                static_cast<double>(one_route) / 2.0,
                static_cast<double>(one_route) * 0.05);
}

TEST(Flow, StoreAndForwardPipelines)
{
    // A two-hop route with chunking should take ~bytes/bw + chunk time,
    // not 2x bytes/bw.
    EventQueue eq;
    Channel a(eq, "a", 1e9, 0);
    Channel b(eq, "b", 1e9, 0);
    Tick done = 0;
    sendFlow({Route{{&a, &b}}}, 1e6, 1e4, [&] { done = eq.now(); });
    eq.run();
    const double base = 1e6 / 1e9; // 1 ms wire time per hop
    EXPECT_LT(ticksToSeconds(done), base * 1.1);
    EXPECT_GT(ticksToSeconds(done), base * 0.99);
}

TEST(Flow, ZeroBytesCompletesImmediately)
{
    EventQueue eq;
    Channel a(eq, "a", 1e9, 0);
    bool done = false;
    sendFlow({Route{{&a}}}, 0.0, 1e3, [&] { done = true; });
    EXPECT_TRUE(done);
}

// ------------------------------------------------------ fabric builders

FabricConfig
testConfig(int devices = 8)
{
    FabricConfig cfg;
    cfg.numDevices = devices;
    return cfg;
}

std::multiset<int>
stageCounts(const Fabric &fab)
{
    std::multiset<int> counts;
    for (const RingPath &ring : fab.rings())
        counts.insert(ring.stageCount());
    return counts;
}

TEST(Fabrics, DcdlaHasSixDeviceRingsOfEight)
{
    EventQueue eq;
    auto fab = buildDcdlaFabric(eq, testConfig());
    // 3 bidirectional rings -> 6 logical unidirectional rings.
    ASSERT_EQ(fab->rings().size(), 6u);
    for (const RingPath &ring : fab->rings()) {
        EXPECT_EQ(ring.stageCount(), 8);
        EXPECT_EQ(ring.physicalHopCount(), 8);
        EXPECT_EQ(ring.deviceMembers().size(), 8u);
    }
}

TEST(Fabrics, DcdlaVmemPathGoesThroughPcieAndSocket)
{
    EventQueue eq;
    auto fab = buildDcdlaFabric(eq, testConfig());
    for (int d = 0; d < 8; ++d) {
        const auto &paths = fab->vmemPaths(d);
        ASSERT_EQ(paths.size(), 1u);
        EXPECT_EQ(paths[0].targetIndex, -1);
        ASSERT_EQ(paths[0].writeRoutes.size(), 1u);
        EXPECT_EQ(paths[0].writeRoutes[0].hops.size(), 2u);
        ASSERT_EQ(paths[0].readRoutes.size(), 1u);
    }
    EXPECT_EQ(fab->socketChannels().size(), 2u);
}

TEST(Fabrics, DcdlaOracleHasNoVmemPaths)
{
    EventQueue eq;
    auto fab = buildDcdlaFabric(eq, testConfig(), false);
    for (int d = 0; d < 8; ++d)
        EXPECT_TRUE(fab->vmemPaths(d).empty());
}

TEST(Fabrics, HcdlaDeviceRingBudgetIsHalved)
{
    EventQueue eq;
    auto fab = buildHcdlaFabric(eq, testConfig());
    // Two logical ring pairs; the second pair multiplexes odd hops.
    ASSERT_EQ(fab->rings().size(), 4u);
    for (const RingPath &ring : fab->rings())
        EXPECT_EQ(ring.stageCount(), 8);
    // Three host links per device for vmem.
    for (int d = 0; d < 8; ++d) {
        const auto &paths = fab->vmemPaths(d);
        ASSERT_EQ(paths.size(), 1u);
        EXPECT_EQ(paths[0].writeRoutes.size(), 3u);
        EXPECT_EQ(paths[0].readRoutes.size(), 3u);
    }
}

TEST(Fabrics, HcdlaSecondRingSharesOddHopChannels)
{
    EventQueue eq;
    auto fab = buildHcdlaFabric(eq, testConfig());
    const RingPath &r0 = fab->rings()[0];
    const RingPath &r2 = fab->rings()[2];
    int shared = 0;
    for (int i = 0; i < 8; ++i) {
        if (r0.hops[static_cast<std::size_t>(i)].hops[0]
            == r2.hops[static_cast<std::size_t>(i)].hops[0])
            ++shared;
    }
    EXPECT_EQ(shared, 4); // odd edges have a single physical link
}

TEST(Fabrics, McdlaRingHasSixteenStageRings)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());
    ASSERT_EQ(fab->rings().size(), 6u);
    for (const RingPath &ring : fab->rings()) {
        // Fig 7(c): D and M alternate; 16 stages, each a physical hop.
        EXPECT_EQ(ring.stageCount(), 16);
        EXPECT_EQ(ring.physicalHopCount(), 16);
        EXPECT_EQ(ring.deviceMembers().size(), 8u);
        int devices = 0, memories = 0;
        for (const RingStage &s : ring.stages)
            (s.isDevice ? devices : memories)++;
        EXPECT_EQ(devices, 8);
        EXPECT_EQ(memories, 8);
    }
}

TEST(Fabrics, McdlaRingVmemEngagesBothNeighbors)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());
    for (int d = 0; d < 8; ++d) {
        const auto &paths = fab->vmemPaths(d);
        ASSERT_EQ(paths.size(), 2u);
        // Right neighbor is M_d, left is M_{d-1}.
        EXPECT_EQ(paths[0].targetIndex, d);
        EXPECT_EQ(paths[1].targetIndex, (d + 7) % 8);
        // numRings (3) parallel routes per target: N*B/2 per side.
        EXPECT_EQ(paths[0].writeRoutes.size(), 3u);
        EXPECT_EQ(paths[1].writeRoutes.size(), 3u);
        // Writes traverse link then DIMM bus.
        EXPECT_EQ(paths[0].writeRoutes[0].hops.size(), 2u);
    }
    EXPECT_EQ(fab->memNodeChannels().size(), 8u);
}

TEST(Fabrics, McdlaStarRingStagesMatchFig7b)
{
    EventQueue eq;
    auto fab = buildMcdlaStarFabric(eq, testConfig());
    // Fig 7(b): rings of 8, 12, and 20 hops (both directions each).
    EXPECT_EQ(stageCounts(*fab),
              (std::multiset<int>{8, 8, 12, 12, 20, 20}));
}

TEST(Fabrics, McdlaStarVmemUsesTwoDesignatedLinks)
{
    EventQueue eq;
    auto fab = buildMcdlaStarFabric(eq, testConfig());
    for (int d = 0; d < 8; ++d) {
        const auto &paths = fab->vmemPaths(d);
        ASSERT_EQ(paths.size(), 1u);
        EXPECT_EQ(paths[0].targetIndex, d);
        EXPECT_EQ(paths[0].writeRoutes.size(), 2u); // 50 GB/s
    }
}

TEST(Fabrics, McdlaStarAStagesMatchFig7a)
{
    EventQueue eq;
    auto fab = buildMcdlaStarAFabric(eq, testConfig());
    // Fig 7(a): two 8-hop device rings and the 24-hop black ring
    // (memory-nodes visited twice), both directions each.
    EXPECT_EQ(stageCounts(*fab),
              (std::multiset<int>{8, 8, 8, 8, 24, 24}));
}

TEST(Fabrics, StarABlackRingVisitsEveryMemoryNodeTwice)
{
    EventQueue eq;
    auto fab = buildMcdlaStarAFabric(eq, testConfig());
    for (const RingPath &ring : fab->rings()) {
        if (ring.stageCount() != 24)
            continue;
        std::map<int, int> visits;
        for (const RingStage &s : ring.stages)
            if (!s.isDevice)
                ++visits[s.index];
        ASSERT_EQ(visits.size(), 8u);
        for (const auto &[node, count] : visits)
            EXPECT_EQ(count, 2) << "memory node " << node;
    }
}

TEST(Fabrics, RingsScaleToFourDevices)
{
    EventQueue eq;
    auto dc = buildDcdlaFabric(eq, testConfig(4));
    for (const RingPath &ring : dc->rings())
        EXPECT_EQ(ring.stageCount(), 4);
    auto mc = buildMcdlaRingFabric(eq, testConfig(4));
    for (const RingPath &ring : mc->rings())
        EXPECT_EQ(ring.stageCount(), 8);
}

TEST(Fabrics, SingleDeviceMcdlaHasNoRingsButVmemWorks)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig(1));
    EXPECT_TRUE(fab->rings().empty());
    // All N=6 links land on the single memory-node.
    EXPECT_EQ(fab->vmemPaths(0).size(), 1u);
    EXPECT_EQ(fab->vmemPaths(0)[0].writeRoutes.size(), 6u);
    EXPECT_EQ(fab->vmemPaths(0)[0].readRoutes.size(), 6u);
}

TEST(Fabrics, StageOfDeviceLookup)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());
    const RingPath &ring = fab->rings()[0];
    EXPECT_EQ(ring.stageOfDevice(0), 0);
    EXPECT_EQ(ring.stageOfDevice(1), 2); // M0 sits between D0 and D1
    EXPECT_EQ(ring.stageOfDevice(99), -1);
}

TEST(Fabrics, HostBytesAccounting)
{
    EventQueue eq;
    auto fab = buildDcdlaFabric(eq, testConfig());
    const auto &path = fab->vmemPaths(0)[0];
    sendFlow(path.writeRoutes, 1e6, 1e5, nullptr);
    eq.run();
    EXPECT_DOUBLE_EQ(fab->hostBytes(), 1e6);
}

} // anonymous namespace
} // namespace mcdla
