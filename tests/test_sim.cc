/**
 * @file
 * Unit tests for the simulation core: event queue, units, stats,
 * logging, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simcheck.hh"
#include "sim/stats.hh"
#include "sim/units.hh"

namespace mcdla
{
namespace
{

class ThrowingErrors : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

// ---------------------------------------------------------------- units

TEST(Units, TickConstantsAreConsistent)
{
    EXPECT_EQ(ticksPerSec, 1000 * ticksPerMs);
    EXPECT_EQ(ticksPerMs, 1000 * ticksPerUs);
    EXPECT_EQ(ticksPerUs, 1000 * ticksPerNs);
}

TEST(Units, SecondsRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), ticksPerSec);
    EXPECT_DOUBLE_EQ(ticksToSeconds(ticksPerSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToMs(ticksPerMs), 1.0);
    EXPECT_DOUBLE_EQ(ticksToUs(ticksPerUs), 1.0);
}

TEST(Units, TransferTicksRoundsUp)
{
    // 1 byte at 1 GB/s = 1 ns = 1000 ticks.
    EXPECT_EQ(transferTicks(1.0, 1e9), 1000u);
    // Fractional durations round up.
    EXPECT_EQ(transferTicks(1.0, 3e12), 1u);
    // Zero bytes take zero time.
    EXPECT_EQ(transferTicks(0.0, 1e9), 0u);
    // Non-empty transfers always take at least one tick.
    EXPECT_GE(transferTicks(1e-3, 1e12), 1u);
}

TEST(Units, TransferTicksScalesLinearly)
{
    const Tick one = transferTicks(1e6, 25e9);
    const Tick ten = transferTicks(10e6, 25e9);
    EXPECT_NEAR(static_cast<double>(ten),
                10.0 * static_cast<double>(one),
                static_cast<double>(one) * 0.01);
}

TEST(Units, Formatters)
{
    EXPECT_NE(formatTime(123).find("ns"), std::string::npos);
    EXPECT_NE(formatTime(ticksPerMs * 5).find("ms"), std::string::npos);
    EXPECT_NE(formatBytes(512).find("B"), std::string::npos);
    EXPECT_NE(formatBytes(2.0 * kGiB).find("GiB"), std::string::npos);
    EXPECT_NE(formatBandwidth(25e9).find("GB/s"), std::string::npos);
}

// ----------------------------------------------------------- event queue

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleAfter(5, [&] { ++fired; });
    });
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id)); // double-cancel is a no-op
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, DescheduleOfInvalidIdFails)
{
    EventQueue eq;
    EXPECT_FALSE(eq.deschedule(invalidEventId));
    EXPECT_FALSE(eq.deschedule(9999));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pendingCount(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, StepExecutesSingleEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.schedule(50, [] {});
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executedCount(), 0u);
}

TEST_F(ThrowingErrors, SchedulingInThePastClampsToNow)
{
    // Without SimCheck a past-tick schedule is a logged clamp, not a
    // hard error: the event runs at now().
    const bool was_enabled = simcheck::enabled();
    simcheck::setEnabled(false);
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    bool ran = false;
    Tick fired = 0;
    eq.schedule(50, [&] {
        ran = true;
        fired = eq.now();
    });
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(fired, 100u);
    simcheck::setEnabled(was_enabled);
}

TEST_F(ThrowingErrors, SchedulingInThePastPanicsUnderSimCheck)
{
    const bool was_enabled = simcheck::enabled();
    simcheck::setEnabled(true);
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), PanicError);
    simcheck::setEnabled(was_enabled);
}

TEST_F(ThrowingErrors, SchedulingEmptyCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(10, EventQueue::Callback{}), PanicError);
}

// ----------------------------------------------------------------- stats

TEST(Stats, ScalarAccumulates)
{
    StatSet stats("test.");
    Scalar &s = stats.scalar("count", "a counter");
    s += 2.0;
    ++s;
    EXPECT_DOUBLE_EQ(stats.value("count"), 3.0);
    s = 10.0;
    EXPECT_DOUBLE_EQ(stats.value("count"), 10.0);
}

TEST(Stats, ScalarIsIdempotentByName)
{
    StatSet stats;
    stats.scalar("x") += 1.0;
    stats.scalar("x") += 1.0;
    EXPECT_DOUBLE_EQ(stats.value("x"), 2.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatSet stats;
    Scalar &s = stats.scalar("bytes");
    stats.formula("kib", [&s] { return s.value() / 1024.0; });
    s = 2048.0;
    EXPECT_DOUBLE_EQ(stats.value("kib"), 2.0);
}

TEST(Stats, DistributionSummaries)
{
    StatSet stats;
    Distribution &d = stats.distribution("lat", 100.0, 10);
    d.sample(5.0);
    d.sample(95.0);
    d.sample(50.0, 2);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    EXPECT_DOUBLE_EQ(d.max(), 95.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.0);
    EXPECT_EQ(d.overflow(), 0u);
    d.sample(150.0);
    EXPECT_EQ(d.overflow(), 1u);
}

TEST(Stats, ResetZeroesValues)
{
    StatSet stats;
    stats.scalar("x") = 5.0;
    stats.distribution("d", 10.0).sample(3.0);
    stats.reset();
    EXPECT_DOUBLE_EQ(stats.value("x"), 0.0);
    EXPECT_EQ(stats.distribution("d", 10.0).count(), 0u);
}

TEST(Stats, DumpEmitsPrefixedLines)
{
    StatSet stats("chan.");
    stats.scalar("bytes", "payload") = 42.0;
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("chan.bytes 42"), std::string::npos);
    EXPECT_NE(os.str().find("payload"), std::string::npos);
}

TEST_F(ThrowingErrors, UnknownStatIsFatal)
{
    StatSet stats;
    EXPECT_THROW(stats.value("nope"), FatalError);
}

TEST(Stats, HasChecksAllKinds)
{
    StatSet stats;
    stats.scalar("s");
    stats.formula("f", [] { return 1.0; });
    stats.distribution("d", 1.0);
    EXPECT_TRUE(stats.has("s"));
    EXPECT_TRUE(stats.has("f"));
    EXPECT_TRUE(stats.has("d"));
    EXPECT_FALSE(stats.has("missing"));
}

// --------------------------------------------------------------- logging

TEST_F(ThrowingErrors, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST_F(ThrowingErrors, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config %s", "x"), FatalError);
}

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strfmt("plain"), "plain");
}

// ---------------------------------------------------------------- random

TEST(Random, DeterministicForSameSeed)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Random, BelowStaysInRange)
{
    Random r(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, BetweenIsInclusive)
{
    Random r(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        hit_lo |= v == 3;
        hit_hi |= v == 5;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Random, UniformMeanIsCentered)
{
    Random r(42);
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

} // anonymous namespace
} // namespace mcdla
