/**
 * @file
 * Causal-observability tests: provenance capture on a hand-built
 * scenario with a known critical path, DAG conservation under
 * SimCheck, attribution summing to the makespan, what-if predictions
 * validated against actual re-runs, and the no-perturbation guarantee
 * (identical determinism-audit hash with the recorder attached).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "core/scenario.hh"
#include "core/simulator.hh"
#include "serving/serving.hh"
#include "sim/causal.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/simcheck.hh"
#include "workloads/job_mix.hh"
#include "workloads/synthetic.hh"

namespace mcdla
{
namespace
{

/**
 * Hand-built diamond join with a known critical path:
 *
 *   root (t=0) schedules A (fires t=10) and B (fires t=25);
 *   whichever fires last schedules C (+5) — last-arrival binding, so
 *   C's parent is B and the critical path is root -> B -> C with
 *   makespan 30. A also schedules a dead-end D (+2, fires t=12) that
 *   must stay off the path.
 */
TEST(Causal, HandBuiltCriticalPath)
{
    EventQueue eq;
    CausalRecorder rec;
    eq.setCausalRecorder(&rec);

    int arrived = 0;
    Tick c_fired = 0;
    auto join = [&] {
        if (++arrived == 2) {
            CausalScope scope(eq.causalRecorder(), WaitKind::Compute,
                              CausalCtx::Collective, "joined");
            eq.scheduleAfter(5, [&] { c_fired = eq.now(); }, "C");
        }
    };
    eq.schedule(0,
                [&] {
                    {
                        CausalScope scope(eq.causalRecorder(),
                                          WaitKind::Compute, "devA");
                        eq.scheduleAfter(10,
                                         [&] {
                                             join();
                                             eq.scheduleAfter(
                                                 2, [] {}, "D");
                                         },
                                         "A");
                    }
                    CausalScope scope(eq.causalRecorder(),
                                      WaitKind::ChanXfer,
                                      CausalCtx::Dma, "chanB");
                    eq.scheduleAfter(25, join, "B");
                },
                "root");
    eq.run();

    ASSERT_EQ(c_fired, 30u);
    ASSERT_EQ(rec.nodes().size(), 5u);
    ASSERT_EQ(rec.executedCount(), 5u);

    const CausalAnalysis analysis(rec);
    EXPECT_EQ(analysis.makespan(), 30u);

    // root -> B -> C, never through A or D.
    const std::vector<std::size_t> &path = analysis.criticalPath();
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(rec.labelName(rec.nodes()[path[0]].label), "root");
    EXPECT_EQ(rec.labelName(rec.nodes()[path[1]].label), "B");
    EXPECT_EQ(rec.labelName(rec.nodes()[path[2]].label), "C");

    // Edge typing: B's 25 ticks are chan_xfer in the dma context on
    // "chanB"; C's 5 ticks are compute in the collective context.
    EXPECT_EQ(analysis.pathKindTicks(WaitKind::ChanXfer), 25u);
    EXPECT_EQ(analysis.pathKindTicks(WaitKind::Compute), 5u);
    EXPECT_EQ(analysis.pathCtxTicks(CausalCtx::Dma), 25u);
    EXPECT_EQ(analysis.pathCtxTicks(CausalCtx::Collective), 5u);
    const CausalRecorder::Node &b = rec.nodes()[path[1]];
    EXPECT_EQ(rec.resourceName(b.resource), "chanB");
    EXPECT_EQ(b.ctx, CausalCtx::Dma);

    // Kind/subsystem attribution (plus origin) sums to the makespan.
    Tick kind_total = analysis.originTicks();
    for (std::size_t k = 0; k < kWaitKindCount; ++k)
        kind_total += analysis.pathKindTicks(static_cast<WaitKind>(k));
    EXPECT_EQ(kind_total, analysis.makespan());

    // What-if on the recorded DAG: halving chan edges moves B to
    // t=12.5; the join then binds at... the *recorded* parent stays
    // binding, so predicted C = 12.5 + 5 = 17.5.
    const WhatIfResult whatif = analysis.whatIf({{"chan", 0.5}});
    EXPECT_EQ(whatif.baseline, 30u);
    EXPECT_DOUBLE_EQ(whatif.predicted, 17.5);
    EXPECT_EQ(whatif.scaledEdges, 1u);

    // Unknown class: fatal, listing the valid classes.
    LogConfig::throwOnError = true;
    EXPECT_THROW(analysis.whatIf({{"warp-drive", 0.5}}), FatalError);
    LogConfig::throwOnError = false;
    const std::vector<std::string> classes = analysis.validClasses();
    EXPECT_NE(std::find(classes.begin(), classes.end(), "chanB"),
              classes.end());
    EXPECT_NE(std::find(classes.begin(), classes.end(), "compute"),
              classes.end());
}

/** Scenario helper: one AlexNet dp iteration on MC-DLA(B). */
Scenario
dpScenario()
{
    Scenario sc;
    sc.workload = "AlexNet";
    sc.design = SystemDesign::McDlaB;
    sc.mode = ParallelMode::DataParallel;
    sc.globalBatch = 512;
    return sc;
}

/** Run @p sc recorded; returns the recorder (and result ticks). */
Tick
runRecorded(const Scenario &sc, CausalRecorder &rec)
{
    Simulator sim;
    Simulator::Hooks hooks;
    hooks.causal = &rec;
    const IterationResult result = sim.run(sc, hooks);
    return secondsToTicks(result.iterationSeconds());
}

TEST(Causal, DagConservationUnderSimCheck)
{
    const bool was_enabled = simcheck::enabled();
    simcheck::setEnabled(true);
    LogConfig::throwOnError = true;

    CausalRecorder rec;
    runRecorded(dpScenario(), rec);

    // Construction runs simcheckVerify (SimCheck is on); also check
    // the ledger explicitly: every node is executed, cancelled, or
    // discarded-at-drain, and executed nodes have sane parents.
    EXPECT_NO_THROW(rec.simcheckVerify());
    std::uint64_t executed = 0, cancelled = 0, discarded = 0;
    for (const CausalRecorder::Node &node : rec.nodes()) {
        if (node.executed)
            ++executed;
        else if (node.cancelled)
            ++cancelled;
        else
            ++discarded;
        if (node.executed && node.parent >= 0) {
            const CausalRecorder::Node &parent =
                rec.nodes()[static_cast<std::size_t>(node.parent)];
            EXPECT_TRUE(parent.executed);
            EXPECT_EQ(parent.fire, node.sched);
            EXPECT_LE(node.sched, node.fire);
        }
    }
    EXPECT_EQ(executed, rec.executedCount());
    EXPECT_EQ(cancelled, rec.cancelledCount());
    EXPECT_EQ(executed + cancelled + discarded, rec.scheduled());
    EXPECT_GT(executed, 100000u); // a real run, not a stub

    const CausalAnalysis analysis(rec);
    // Attribution sums exactly to the makespan, per kind and per
    // subsystem (acceptance criterion).
    Tick kind_total = analysis.originTicks();
    for (std::size_t k = 0; k < kWaitKindCount; ++k)
        kind_total += analysis.pathKindTicks(static_cast<WaitKind>(k));
    EXPECT_EQ(kind_total, analysis.makespan());
    Tick ctx_total = analysis.originTicks();
    for (std::size_t c = 0; c < kCausalCtxCount; ++c)
        ctx_total += analysis.pathCtxTicks(static_cast<CausalCtx>(c));
    EXPECT_EQ(ctx_total, analysis.makespan());

    LogConfig::throwOnError = false;
    simcheck::setEnabled(was_enabled);
}

TEST(Causal, WhatIfMatchesRerunDp)
{
    // Predict compute at 0.8x along the recorded DAG, then actually
    // re-run with the compute model scaled. The recorded-parent
    // assumption holds well at this factor; the acceptance bound is
    // 10%.
    CausalRecorder rec;
    runRecorded(dpScenario(), rec);
    const CausalAnalysis analysis(rec);
    const WhatIfResult whatif = analysis.whatIf({{"compute", 0.8}});
    EXPECT_GT(whatif.scaledEdges, 0u);
    EXPECT_LT(whatif.predicted,
              static_cast<double>(whatif.baseline));

    Scenario scaled = dpScenario();
    scaled.base.computeTimeScale = 0.8;
    CausalRecorder rec2;
    runRecorded(scaled, rec2);
    const Tick actual = CausalAnalysis(rec2).makespan();
    const double error =
        std::abs(whatif.predicted - static_cast<double>(actual))
        / static_cast<double>(actual);
    EXPECT_LT(error, 0.10) << "predicted " << whatif.predicted
                           << " ticks vs actual " << actual;
}

/** Seeded 4-job cluster run mirroring the bench smoke point. */
ClusterConfig
clusterCfg(double compute_scale)
{
    ClusterConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;
    cfg.base.seed = 7;
    cfg.base.base.computeTimeScale = compute_scale;
    return cfg;
}

Tick
runCluster(ClusterConfig cfg, CausalRecorder *rec)
{
    cfg.causal = rec;
    Random rng(cfg.base.seed);
    std::vector<JobSpec> jobs = synthesizeJobs(
        4, /*arrival_rate=*/50.0, cfg.base.base.fabric.numDevices,
        rng);
    Cluster cluster(cfg, std::move(jobs));
    return secondsToTicks(cluster.run().makespanSec);
}

TEST(Causal, WhatIfMatchesRerunCluster)
{
    CausalRecorder rec;
    runCluster(clusterCfg(1.0), &rec);
    const CausalAnalysis analysis(rec);
    const WhatIfResult whatif = analysis.whatIf({{"compute", 0.5}});
    EXPECT_GT(whatif.scaledEdges, 0u);

    const Tick actual = runCluster(clusterCfg(0.5), nullptr);
    const double error =
        std::abs(whatif.predicted - static_cast<double>(actual))
        / static_cast<double>(actual);
    EXPECT_LT(error, 0.10) << "predicted " << whatif.predicted
                           << " ticks vs actual " << actual;
}

/** Seeded serving run mirroring the bench smoke point. */
Tick
runServe(double compute_scale, CausalRecorder *rec)
{
    ServingConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;
    cfg.base.workload = "AlexNet";
    cfg.base.serve = true;
    cfg.base.replicas = 2;
    cfg.base.globalBatch = 8;
    cfg.base.sloMs = 50.0;
    cfg.base.seed = 5;
    cfg.base.base.computeTimeScale = compute_scale;
    cfg.causal = rec;
    Random rng(cfg.base.seed);
    std::vector<Request> stream = synthesizeRequests(
        20, /*rate=*/200.0, ArrivalKind::Poisson, rng);
    ServingCluster serving(cfg, std::move(stream));
    return secondsToTicks(serving.run().makespanSec);
}

TEST(Causal, WhatIfMatchesRerunServe)
{
    CausalRecorder rec;
    runServe(1.0, &rec);
    const CausalAnalysis analysis(rec);
    const WhatIfResult whatif = analysis.whatIf({{"compute", 0.5}});
    EXPECT_GT(whatif.scaledEdges, 0u);

    const Tick actual = runServe(0.5, nullptr);
    const double error =
        std::abs(whatif.predicted - static_cast<double>(actual))
        / static_cast<double>(actual);
    EXPECT_LT(error, 0.10) << "predicted " << whatif.predicted
                           << " ticks vs actual " << actual;
}

TEST(Causal, RecorderDoesNotPerturbExecution)
{
    // The determinism-audit digest — FNV-1a over the executed
    // (tick, label) stream — must be identical with and without the
    // recorder attached: recording is observation-only.
    Scenario sc = dpScenario();

    DesProfiler plain;
    {
        Simulator sim;
        Simulator::Hooks hooks;
        hooks.profiler = &plain;
        sim.run(sc, hooks);
    }

    DesProfiler recorded;
    CausalRecorder rec;
    {
        Simulator sim;
        Simulator::Hooks hooks;
        hooks.profiler = &recorded;
        hooks.causal = &rec;
        sim.run(sc, hooks);
    }

    EXPECT_EQ(plain.streamHash(), recorded.streamHash());
    EXPECT_EQ(plain.eventsExecuted(), recorded.eventsExecuted());
    EXPECT_EQ(rec.executedCount(), recorded.eventsExecuted());
}

TEST(Causal, WhatIfSpecParsing)
{
    const std::vector<WhatIfChange> changes =
        parseWhatIfSpec("compute:0.5,chan");
    ASSERT_EQ(changes.size(), 2u);
    EXPECT_EQ(changes[0].cls, "compute");
    EXPECT_DOUBLE_EQ(changes[0].factor, 0.5);
    EXPECT_EQ(changes[1].cls, "chan");
    EXPECT_DOUBLE_EQ(changes[1].factor, 0.5); // default

    LogConfig::throwOnError = true;
    EXPECT_THROW(parseWhatIfSpec("compute:zero"), FatalError);
    EXPECT_THROW(parseWhatIfSpec("compute:-1"), FatalError);
    EXPECT_THROW(parseWhatIfSpec(","), FatalError);
    LogConfig::throwOnError = false;
}

} // namespace
} // namespace mcdla
