/**
 * @file
 * Unit tests for the cluster subsystem: pool allocators, schedulers,
 * job traces, ring restriction, and end-to-end multi-job scheduling
 * (including the single-job == standalone reproduction guarantee).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hh"
#include "cluster/job.hh"
#include "cluster/pool_allocator.hh"
#include "cluster/scheduler.hh"
#include "core/simulator.hh"
#include "sim/logging.hh"
#include "workloads/job_mix.hh"

namespace mcdla
{
namespace
{

class ClusterTest : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

// ----------------------------------------------------- pool allocators

TEST_F(ClusterTest, FirstFitAllocatesCoalescesAndFragments)
{
    FirstFitPoolAllocator pool(100);
    EXPECT_EQ(pool.capacity(), 100u);
    EXPECT_EQ(pool.largestFreeBlock(), 100u);
    EXPECT_DOUBLE_EQ(pool.fragmentation(), 0.0);

    const auto a = pool.allocate(40);
    const auto b = pool.allocate(20);
    const auto c = pool.allocate(40);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(a->addr, 0u);
    EXPECT_EQ(b->addr, 40u);
    EXPECT_EQ(c->addr, 60u);
    EXPECT_EQ(pool.usedBytes(), 100u);
    EXPECT_FALSE(pool.canAllocate(1));
    EXPECT_FALSE(pool.allocate(1).has_value());
    EXPECT_EQ(pool.allocationFailures(), 1u);

    // Freeing the middle block leaves a 20-byte hole: usable only by
    // requests that small.
    pool.release(*b);
    EXPECT_EQ(pool.freeBytes(), 20u);
    EXPECT_EQ(pool.largestFreeBlock(), 20u);
    EXPECT_TRUE(pool.canAllocate(20));
    EXPECT_FALSE(pool.canAllocate(21));

    // Freeing the ends too: [0,40)+[40,60) coalesce against live c...
    pool.release(*a);
    EXPECT_EQ(pool.largestFreeBlock(), 60u);
    EXPECT_EQ(pool.holeCount(), 1u);

    // ...and two disjoint holes mean external fragmentation: 60 free
    // in front, 40 unreachable by a single 100-byte request.
    const auto mid = pool.allocate(60);
    ASSERT_TRUE(mid);
    pool.release(*c);
    EXPECT_EQ(pool.holeCount(), 1u);
    const auto front = pool.allocate(10); // splits the reclaimed tail
    ASSERT_TRUE(front);
    pool.release(*mid);
    EXPECT_EQ(pool.holeCount(), 2u);
    EXPECT_GT(pool.fragmentation(), 0.0);

    pool.release(*front);
    EXPECT_EQ(pool.largestFreeBlock(), 100u);
    EXPECT_EQ(pool.holeCount(), 1u);
    EXPECT_DOUBLE_EQ(pool.fragmentation(), 0.0);
    EXPECT_EQ(pool.peakUsedBytes(), 100u);
}

TEST_F(ClusterTest, BuddyRoundsToPowersOfTwoAndMerges)
{
    BuddyPoolAllocator pool(1024, /*min_block=*/64);
    const auto a = pool.allocate(65); // rounds to 128
    ASSERT_TRUE(a);
    EXPECT_EQ(a->bytes, 128u);
    EXPECT_EQ(a->requested, 65u);
    EXPECT_EQ(pool.internalWasteBytes(), 63u);

    const auto b = pool.allocate(64);
    ASSERT_TRUE(b);
    EXPECT_EQ(b->bytes, 64u);
    EXPECT_EQ(pool.usedBytes(), 192u);

    pool.release(*a);
    pool.release(*b);
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.internalWasteBytes(), 0u);
    // Everything merges back into the single 1024 block.
    EXPECT_EQ(pool.largestFreeBlock(), 1024u);

    // A request beyond the largest block can never be placed.
    EXPECT_FALSE(pool.canAllocate(2048));
}

TEST_F(ClusterTest, BuddySeedsNonPowerOfTwoCapacity)
{
    // 1024 + 256: binary decomposition seeds two aligned chunks.
    BuddyPoolAllocator pool(1280, /*min_block=*/64);
    EXPECT_EQ(pool.largestFreeBlock(), 1024u);
    const auto a = pool.allocate(1024);
    ASSERT_TRUE(a);
    EXPECT_EQ(pool.largestFreeBlock(), 256u);
    const auto b = pool.allocate(200); // rounds to 256 at addr 1024
    ASSERT_TRUE(b);
    EXPECT_EQ(b->addr, 1024u);
    EXPECT_FALSE(pool.canAllocate(64));
    pool.release(*a);
    pool.release(*b);
    EXPECT_EQ(pool.largestFreeBlock(), 1024u);
}

TEST_F(ClusterTest, PoolTokensRoundTrip)
{
    for (PoolAllocatorKind kind :
         {PoolAllocatorKind::FirstFit, PoolAllocatorKind::Buddy})
        EXPECT_EQ(parsePoolAllocator(poolAllocatorToken(kind)), kind);
    EXPECT_THROW(parsePoolAllocator("slab"), FatalError);
}

// ---------------------------------------------------------- schedulers

PendingJob
pendingJob(std::size_t index, int devices, std::uint64_t bytes,
           double est, double arrival)
{
    PendingJob job;
    job.jobIndex = index;
    job.devices = devices;
    job.poolBytes = bytes;
    job.estServiceSec = est;
    job.arrivalSec = arrival;
    return job;
}

TEST_F(ClusterTest, FifoBlocksBehindTheHead)
{
    FirstFitPoolAllocator pool(100);
    const auto fifo = makeScheduler(SchedulerKind::Fifo);
    std::vector<PendingJob> queue = {
        pendingJob(0, 8, 10, 1.0, 0.0), // needs the whole machine
        pendingJob(1, 1, 10, 0.1, 0.1),
    };
    // 4 free devices: the head does not fit, so nothing starts.
    EXPECT_EQ(fifo->pick(queue, 4, pool), JobScheduler::npos);
    EXPECT_EQ(fifo->pick(queue, 8, pool), 0u);
}

TEST_F(ClusterTest, SjfPrefersTheShortestEstimate)
{
    FirstFitPoolAllocator pool(100);
    const auto sjf = makeScheduler(SchedulerKind::Sjf);
    std::vector<PendingJob> queue = {
        pendingJob(0, 2, 10, 5.0, 0.0),
        pendingJob(1, 2, 10, 0.5, 0.1),
        pendingJob(2, 2, 10, 2.0, 0.2),
    };
    EXPECT_EQ(sjf->pick(queue, 8, pool), 1u);
}

TEST_F(ClusterTest, BackfillSkipsABlockedHead)
{
    FirstFitPoolAllocator pool(100);
    const auto backfill = makeScheduler(SchedulerKind::Backfill);
    std::vector<PendingJob> queue = {
        pendingJob(0, 8, 10, 1.0, 0.0),
        pendingJob(1, 2, 10, 0.1, 0.1),
    };
    // FIFO would block on the 8-device head; backfill starts job 1.
    EXPECT_EQ(backfill->pick(queue, 4, pool), 1u);

    // When the head is blocked by memory, best-fit packing picks the
    // fitting job that best fills the largest free hole.
    const auto big = pool.allocate(60);
    ASSERT_TRUE(big);
    std::vector<PendingJob> memory_blocked = {
        pendingJob(0, 2, 90, 1.0, 0.0),  // fits devices, not pool
        pendingJob(1, 2, 10, 0.1, 0.1),
        pendingJob(2, 2, 35, 0.1, 0.2),  // best fit for the 40 hole
    };
    EXPECT_EQ(backfill->pick(memory_blocked, 8, pool), 2u);
}

TEST_F(ClusterTest, SchedulerTokensRoundTrip)
{
    for (SchedulerKind kind :
         {SchedulerKind::Fifo, SchedulerKind::Sjf,
          SchedulerKind::Backfill})
        EXPECT_EQ(parseScheduler(schedulerToken(kind)), kind);
    EXPECT_THROW(parseScheduler("gang"), FatalError);
}

// ----------------------------------------------------------- job specs

TEST_F(ClusterTest, JobTraceParsesAndRoundTrips)
{
    std::istringstream in(
        "# mixed stream\n"
        "arrival=0.5 workload=ResNet mode=dp batch=256 devices=4 "
        "iterations=2 name=resnet-a\n"
        "\n"
        "arrival=0.1 workload=VGG-E devices=8 # sorts first\n");
    const std::vector<JobSpec> jobs = parseJobTrace(in);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].workload, "VGG-E");
    EXPECT_DOUBLE_EQ(jobs[0].arrivalSec, 0.1);
    EXPECT_EQ(jobs[1].name, "resnet-a");
    EXPECT_EQ(jobs[1].devices, 4);
    EXPECT_EQ(jobs[1].iterations, 2);

    // jobSpecLine round-trips through the parser.
    std::istringstream again(jobSpecLine(jobs[1]) + "\n");
    const std::vector<JobSpec> reparsed = parseJobTrace(again);
    ASSERT_EQ(reparsed.size(), 1u);
    EXPECT_EQ(reparsed[0].workload, jobs[1].workload);
    EXPECT_EQ(reparsed[0].devices, jobs[1].devices);
    EXPECT_EQ(reparsed[0].mode, jobs[1].mode);
    EXPECT_DOUBLE_EQ(reparsed[0].arrivalSec, jobs[1].arrivalSec);

    std::istringstream bad("arrival=0.0 workload=X frobnicate=1\n");
    EXPECT_THROW(parseJobTrace(bad), FatalError);
    std::istringstream missing("workload=X\n");
    EXPECT_THROW(parseJobTrace(missing), FatalError);
}

TEST_F(ClusterTest, SyntheticStreamIsSeedDeterministic)
{
    Random rng_a(123);
    Random rng_b(123);
    Random rng_c(77);
    const auto a = synthesizeJobs(12, 50.0, 8, rng_a);
    const auto b = synthesizeJobs(12, 50.0, 8, rng_b);
    const auto c = synthesizeJobs(12, 50.0, 8, rng_c);
    ASSERT_EQ(a.size(), 12u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].devices, b[i].devices);
        EXPECT_DOUBLE_EQ(a[i].arrivalSec, b[i].arrivalSec);
        EXPECT_LE(a[i].devices, 8);
        if (i > 0) {
            EXPECT_GE(a[i].arrivalSec, a[i - 1].arrivalSec);
        }
    }
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs || a[i].arrivalSec != c[i].arrivalSec;
    EXPECT_TRUE(differs);
}

TEST_F(ClusterTest, SeedRoundTripsThroughScenarioLabel)
{
    Scenario sc;
    EXPECT_EQ(sc.label().find("seed"), std::string::npos);
    sc.seed = 1234;
    EXPECT_NE(sc.label().find("/seed1234"), std::string::npos);
}

// ------------------------------------------------- ring restriction

TEST_F(ClusterTest, RestrictedRingKeepsThePhysicalLoop)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    ASSERT_FALSE(system.fabric().rings().empty());
    const RingPath &full = system.fabric().rings().front();

    // Restricting to every device reproduces the original ring.
    std::vector<int> all;
    for (int d = 0; d < system.numDevices(); ++d)
        all.push_back(d);
    const RingPath same = restrictRingToDevices(full, all);
    EXPECT_EQ(same.stageCount(), full.stageCount());
    EXPECT_EQ(same.physicalHopCount(), full.physicalHopCount());

    // A two-member ring drops the other device stages but still
    // traverses every physical channel of the loop.
    const RingPath sub = restrictRingToDevices(full, {2, 5});
    const std::vector<int> members = sub.deviceMembers();
    ASSERT_EQ(members.size(), 2u);
    EXPECT_EQ(members[0], 2);
    EXPECT_EQ(members[1], 5);
    EXPECT_LT(sub.stageCount(), full.stageCount());
    EXPECT_EQ(sub.physicalHopCount(), full.physicalHopCount());

    // Fewer than two members: no ring.
    EXPECT_EQ(restrictRingToDevices(full, {3}).stageCount(), 0);
}

// ------------------------------------------------- cluster end-to-end

JobSpec
makeJob(const std::string &name, const std::string &workload,
        std::int64_t batch, int devices, double arrival,
        int iterations = 1)
{
    JobSpec spec;
    spec.name = name;
    spec.workload = workload;
    spec.batch = batch;
    spec.devices = devices;
    spec.arrivalSec = arrival;
    spec.iterations = iterations;
    return spec;
}

TEST_F(ClusterTest, SingleJobReproducesStandaloneExactly)
{
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = "ResNet";
    sc.globalBatch = 512;
    sc.iterations = 2;
    Simulator sim;
    const IterationResult solo = sim.run(sc);

    ClusterConfig cfg;
    cfg.base = sc;
    JobSpec job = makeJob("solo", "ResNet", 512, 8, 0.0, 2);
    Cluster cluster(cfg, {job});
    const ClusterReport report = cluster.run();

    ASSERT_EQ(report.jobs.size(), 1u);
    const JobOutcome &outcome = report.jobs[0];
    ASSERT_TRUE(outcome.completed);
    const IterationResult &clustered = outcome.lastIteration;

    EXPECT_EQ(clustered.makespan, solo.makespan);
    EXPECT_DOUBLE_EQ(clustered.breakdown.computeSec,
                     solo.breakdown.computeSec);
    EXPECT_DOUBLE_EQ(clustered.breakdown.syncSec,
                     solo.breakdown.syncSec);
    EXPECT_DOUBLE_EQ(clustered.breakdown.vmemSec,
                     solo.breakdown.vmemSec);
    EXPECT_EQ(clustered.paging.fills, solo.paging.fills);
    EXPECT_EQ(clustered.paging.writebacks, solo.paging.writebacks);
    EXPECT_EQ(clustered.paging.demandHits, solo.paging.demandHits);
    EXPECT_DOUBLE_EQ(clustered.offloadBytesPerDevice,
                     solo.offloadBytesPerDevice);
    EXPECT_DOUBLE_EQ(clustered.syncBytes, solo.syncBytes);
    EXPECT_DOUBLE_EQ(outcome.queueSec(), 0.0);
}

TEST_F(ClusterTest, BackfillBeatsFifoOnABlockedMix)
{
    // A 6-device job holds the machine while an 8-device job queues;
    // two 1-device jobs arrive behind it. FIFO parks them; backfill
    // slots them into the two free devices.
    const std::vector<JobSpec> jobs = {
        makeJob("big6", "ResNet", 256, 6, 0.00, 10),
        makeJob("full8", "VGG-E", 512, 8, 0.01),
        makeJob("tiny-a", "AlexNet", 128, 1, 0.02),
        makeJob("tiny-b", "RNN-GEMV", 128, 1, 0.03),
    };

    auto runWith = [&jobs](SchedulerKind scheduler) {
        ClusterConfig cfg;
        cfg.base.design = SystemDesign::McDlaB;
        cfg.scheduler = scheduler;
        Cluster cluster(cfg, jobs);
        return cluster.run();
    };
    const ClusterReport fifo = runWith(SchedulerKind::Fifo);
    const ClusterReport backfill = runWith(SchedulerKind::Backfill);

    ASSERT_EQ(fifo.completedJobs(), 4u);
    ASSERT_EQ(backfill.completedJobs(), 4u);
    EXPECT_LT(backfill.meanJctSec(), fifo.meanJctSec());
    // The small jobs never queue under backfill...
    EXPECT_NEAR(backfill.jobs[2].queueSec(), 0.0, 1e-9);
    EXPECT_NEAR(backfill.jobs[3].queueSec(), 0.0, 1e-9);
    // ...but wait for the whole-machine job under FIFO.
    EXPECT_GT(fifo.jobs[2].queueSec(), 0.01);
    EXPECT_GT(fifo.jobs[3].queueSec(), 0.01);
}

TEST_F(ClusterTest, CoLocatedJobsContendOnTheSharedFabric)
{
    // Model-parallel GoogLeNet gathers feature maps at every
    // channel-mixing boundary, so two 4-device jobs sharing the ring
    // slow each other down measurably: no per-job private bandwidth.
    auto mpJob = [](const char *name) {
        JobSpec spec;
        spec.name = name;
        spec.workload = "GoogLeNet";
        spec.mode = ParallelMode::ModelParallel;
        spec.batch = 256;
        spec.devices = 4;
        spec.iterations = 2;
        return spec;
    };
    ClusterConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;

    Cluster alone(cfg, {mpJob("a")});
    const double solo_service = alone.run().jobs[0].serviceSec();

    Cluster shared(cfg, {mpJob("a"), mpJob("b")});
    const ClusterReport report = shared.run();
    ASSERT_EQ(report.completedJobs(), 2u);
    // Both started immediately (8 devices cover both)...
    EXPECT_NEAR(report.jobs[0].queueSec(), 0.0, 1e-9);
    EXPECT_NEAR(report.jobs[1].queueSec(), 0.0, 1e-9);
    // ...but the shared channels stretch both services well past solo.
    EXPECT_GT(report.jobs[0].serviceSec(), solo_service * 1.05);
    EXPECT_GT(report.jobs[1].serviceSec(), solo_service * 1.05);

    // The structural reason: the two jobs' restricted collective
    // rings traverse overlapping physical channels.
    EventQueue eq;
    System system(eq, cfg.base.config());
    const RingPath &full = system.fabric().rings().front();
    const RingPath left = restrictRingToDevices(full, {0, 1, 2, 3});
    const RingPath right = restrictRingToDevices(full, {4, 5, 6, 7});
    std::set<const Channel *> left_channels;
    for (const Route &hop : left.hops)
        for (Channel *channel : hop.hops)
            left_channels.insert(channel);
    bool overlap = false;
    for (const Route &hop : right.hops)
        for (Channel *channel : hop.hops)
            overlap = overlap || left_channels.count(channel) > 0;
    EXPECT_TRUE(overlap);
}

TEST_F(ClusterTest, PoolExhaustionQueuesJobsDespiteFreeDevices)
{
    // Shrink the pool to one 8 GiB DIMM per memory-node (64 GiB
    // total): three single-device VGG-E jobs demand ~29 GiB each, so
    // only two fit at once even though six devices stay idle.
    ClusterConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;
    cfg.base.base.memNode.dimm = dimmByCapacityGib(8);
    cfg.base.base.memNode.numDimms = 1;

    const std::vector<JobSpec> jobs = {
        makeJob("vgg-a", "VGG-E", 512, 1, 0.0),
        makeJob("vgg-b", "VGG-E", 512, 1, 0.0),
        makeJob("vgg-c", "VGG-E", 512, 1, 0.0),
    };
    Cluster cluster(cfg, jobs);
    EXPECT_EQ(cluster.poolCapacityBytes(), 64 * kGiB);
    const ClusterReport report = cluster.run();

    ASSERT_EQ(report.completedJobs(), 3u);
    EXPECT_GT(report.jobs[0].poolBytes, 20 * kGiB);
    // Two run immediately; the third queues on memory alone.
    EXPECT_NEAR(report.jobs[0].queueSec(), 0.0, 1e-9);
    EXPECT_NEAR(report.jobs[1].queueSec(), 0.0, 1e-9);
    EXPECT_GT(report.jobs[2].queueSec(), 0.0);
    EXPECT_GE(report.allocationFailures, 1u);

    // The timeline recorded the failure and the carve-outs.
    bool saw_fail = false;
    bool saw_alloc = false;
    for (const PoolSample &sample : report.timeline) {
        saw_fail = saw_fail
            || std::string(sample.event) == "fail";
        saw_alloc = saw_alloc
            || std::string(sample.event) == "alloc";
    }
    EXPECT_TRUE(saw_fail);
    EXPECT_TRUE(saw_alloc);
}

TEST_F(ClusterTest, InfeasibleJobsAreRejectedNotWedged)
{
    ClusterConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;
    JobSpec bad_pipeline = makeJob("bad-pp", "ResNet", 256, 2, 0.05);
    bad_pipeline.mode = ParallelMode::Pipeline;
    bad_pipeline.pipelineStages = 4; // > its 2 devices
    const std::vector<JobSpec> jobs = {
        makeJob("too-wide", "ResNet", 512, 16, 0.0), // > 8 devices
        bad_pipeline,
        makeJob("fine", "AlexNet", 128, 1, 0.1),
    };
    Cluster cluster(cfg, jobs);
    const ClusterReport report = cluster.run();
    ASSERT_EQ(report.jobs.size(), 3u);
    EXPECT_TRUE(report.jobs[0].rejected);
    EXPECT_FALSE(report.jobs[0].completed);
    EXPECT_TRUE(report.jobs[1].rejected);
    EXPECT_TRUE(report.jobs[2].completed);
}

TEST_F(ClusterTest, ReportTablesMatchTheirColumns)
{
    ClusterConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;
    Cluster cluster(cfg, {makeJob("a", "AlexNet", 128, 2, 0.0)});
    const ClusterReport report = cluster.run();

    const ResultSet jobs = report.jobTable();
    EXPECT_EQ(jobs.columns().size(),
              ClusterReport::jobColumns().size());
    EXPECT_EQ(jobs.rowCount(), 1u);
    std::ostringstream csv;
    jobs.writeCsv(csv);
    EXPECT_NE(csv.str().find("completed"), std::string::npos);

    const ResultSet pool = report.poolTable();
    EXPECT_EQ(pool.columns().size(),
              ClusterReport::poolColumns().size());
    EXPECT_GE(pool.rowCount(), 2u); // alloc + free
    EXPECT_GT(report.makespanSec, 0.0);
}

} // anonymous namespace
} // namespace mcdla
