/**
 * @file
 * Unit tests for the Topology graph layer: generators, Router
 * shortest-path/ECMP tables, deviceRoute/sub-ring regression cases,
 * FabricConfig validation, collective algorithm selection (ring vs
 * tree vs hierarchical crossovers), and the per-channel utilization
 * surface.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/cluster.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "core/simulator.hh"
#include "interconnect/fabrics.hh"
#include "sim/logging.hh"

namespace mcdla
{
namespace
{

class TopologyTest : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

FabricConfig
testConfig(int devices = 8)
{
    FabricConfig cfg;
    cfg.numDevices = devices;
    return cfg;
}

/**
 * The legacy ring-walk routing (the pre-Router implementation of
 * Fabric::deviceRoute), kept verbatim as the regression reference:
 * equal-cost routes must keep this choice for bit-reproducibility.
 */
Route
legacyRingWalk(const Fabric &fab, int src, int dst)
{
    Route best;
    std::size_t best_len = 0;
    if (src == dst)
        return best;
    for (const RingPath &ring : fab.rings()) {
        const int start = ring.stageOfDevice(src);
        if (start < 0)
            continue;
        Route walk;
        bool found = false;
        int pos = start;
        for (int step = 0; step < ring.stageCount(); ++step) {
            const Route &hop = ring.hops[static_cast<std::size_t>(pos)];
            walk.hops.insert(walk.hops.end(), hop.hops.begin(),
                             hop.hops.end());
            pos = (pos + 1) % ring.stageCount();
            const RingStage &stage =
                ring.stages[static_cast<std::size_t>(pos)];
            if (stage.isDevice && stage.index == dst) {
                found = true;
                break;
            }
        }
        if (found && (!best.valid() || walk.hops.size() < best_len)) {
            best_len = walk.hops.size();
            best = std::move(walk);
        }
    }
    return best;
}

// ------------------------------------------------------ topology graph

TEST_F(TopologyTest, LegacyBuildersPopulateTheGraph)
{
    EventQueue eq;
    auto mc = buildMcdlaRingFabric(eq, testConfig());
    const Topology &topo = mc->topology();
    EXPECT_EQ(topo.count(NodeKind::Device), 8);
    EXPECT_EQ(topo.count(NodeKind::MemoryNode), 8);
    EXPECT_EQ(topo.count(NodeKind::Switch), 0);
    // 8 DIMM self-links + 4 channels x 3 rings x 8 positions.
    EXPECT_EQ(topo.links().size(), 8u + 96u);
    // Every channel the fabric owns is on the graph.
    EXPECT_EQ(topo.links().size(), mc->channels().size());

    auto dc = buildDcdlaFabric(eq, testConfig());
    EXPECT_EQ(dc->topology().count(NodeKind::Device), 8);
    EXPECT_EQ(dc->topology().count(NodeKind::Host), 2);
    EXPECT_EQ(dc->topology().links().size(), dc->channels().size());
}

TEST_F(TopologyTest, VmemOnlyResourcesAreNotRoutable)
{
    EventQueue eq;
    auto dc = buildDcdlaFabric(eq, testConfig());
    // PCIe and socket channels must never carry device-to-device
    // routes: the all-NVLINK path is 4 hops even though the host
    // "shortcut" would be 2 channels.
    EXPECT_EQ(dc->deviceHopCount(0, 4), 4);
    for (const TopoLink &link : dc->topology().links()) {
        const NodeKind src = dc->topology().nodeInfo(link.src).kind;
        const NodeKind dst = dc->topology().nodeInfo(link.dst).kind;
        if (src == NodeKind::Host || dst == NodeKind::Host) {
            EXPECT_FALSE(link.routable) << link.channel->name();
        }
    }
}

TEST_F(TopologyTest, NodeNamesAndTags)
{
    EventQueue eq;
    auto fab = buildMcdlaSwitchFabric(eq, testConfig());
    const Topology &topo = fab->topology();
    EXPECT_EQ(topo.nodeName(topo.findNode(NodeKind::Device, 3)), "D3");
    EXPECT_EQ(topo.nodeName(topo.findNode(NodeKind::Switch, 0)), "S0");
    EXPECT_STREQ(nodeKindTag(NodeKind::MemoryNode), "M");
}

// ------------------------------------------------------------- router

TEST_F(TopologyTest, DeviceRouteKeepsLegacyChoiceOnRingFabrics)
{
    // On the paper's ring-structured fabrics the BFS distance equals
    // the ring walk's, so deviceRoute must return the walk's exact
    // channel sequence (equal-cost tie keeps the legacy choice) —
    // this is what keeps pipeline/cluster outputs bit-identical.
    EventQueue eq;
    for (const auto &fab :
         {buildDcdlaFabric(eq, testConfig()),
          buildMcdlaRingFabric(eq, testConfig()),
          buildHcdlaFabric(eq, testConfig())}) {
        for (int s = 0; s < 8; ++s) {
            for (int d = 0; d < 8; ++d) {
                const Route walk = legacyRingWalk(*fab, s, d);
                const Route route = fab->deviceRoute(s, d);
                EXPECT_EQ(walk.hops, route.hops)
                    << fab->name() << " " << s << "->" << d;
            }
        }
    }
}

TEST_F(TopologyTest, RouterNeverLosesToTheRingWalk)
{
    EventQueue eq;
    for (const auto &fab :
         {buildMcdlaStarFabric(eq, testConfig()),
          buildMcdlaStarAFabric(eq, testConfig()),
          buildMcdlaSwitchFabric(eq, testConfig())}) {
        for (int s = 0; s < 8; ++s) {
            for (int d = 0; d < 8; ++d) {
                if (s == d)
                    continue;
                const Route walk = legacyRingWalk(*fab, s, d);
                const int hops = fab->deviceHopCount(s, d);
                ASSERT_TRUE(walk.valid());
                EXPECT_GT(hops, 0);
                EXPECT_LE(static_cast<std::size_t>(hops),
                          walk.hops.size())
                    << fab->name() << " " << s << "->" << d;
            }
        }
    }
}

TEST_F(TopologyTest, SwitchFabricRoutesCrossOnePlane)
{
    // The crossbar is the whole point of the switched design: any
    // device pair is up + down, not a walk around the logical ring.
    EventQueue eq;
    auto fab = buildMcdlaSwitchFabric(eq, testConfig());
    for (int d = 1; d < 8; ++d) {
        EXPECT_EQ(fab->deviceHopCount(0, d), 2);
        const Route route = fab->deviceRoute(0, d);
        ASSERT_EQ(route.hops.size(), 2u);
        // Both channels on the same plane (plane names prefix match).
        const std::string up = route.hops[0]->name();
        const std::string down = route.hops[1]->name();
        EXPECT_EQ(up.substr(0, up.find(".d")),
                  down.substr(0, down.find(".d")));
    }
}

TEST_F(TopologyTest, EcmpEnumeratesParallelRings)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());
    const Router &router = fab->router();
    // Three parallel rings x three lanes: 3 x 3 equal-cost 2-hop
    // combinations D0 -> M0 -> D1 over the parent DAG.
    const std::vector<Route> paths = router.routes(0, 1, 16);
    ASSERT_EQ(paths.size(), 9u);
    std::set<Channel *> first_hops, second_hops;
    for (const Route &path : paths) {
        EXPECT_EQ(path.hops.size(), 2u);
        first_hops.insert(path.hops[0]);
        second_hops.insert(path.hops[1]);
    }
    EXPECT_EQ(first_hops.size(), 3u);  // distinct physical lanes
    EXPECT_EQ(second_hops.size(), 3u);
    // The canonical route comes out first, and the cap is honored.
    EXPECT_EQ(paths[0].hops, router.route(0, 1).hops);
    EXPECT_EQ(router.routes(0, 1, 4).size(), 4u);
    EXPECT_TRUE(router.fullyConnected());
}

TEST_F(TopologyTest, RouterEdgeCases)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());
    EXPECT_FALSE(fab->deviceRoute(3, 3).valid());
    EXPECT_FALSE(fab->deviceRoute(0, 99).valid());
    EXPECT_FALSE(fab->deviceRoute(-1, 0).valid());
    EXPECT_EQ(fab->deviceHopCount(5, 5), 0);
    EXPECT_EQ(fab->deviceHopCount(0, 99), -1);
    EXPECT_TRUE(fab->router().routes(2, 2, 4).empty());
}

TEST_F(TopologyTest, HandBuiltFabricFallsBackToRingWalk)
{
    // Fabrics assembled with raw makeChannel/addRing (no graph) must
    // keep routing through the legacy walk — and asking for routing
    // tables is a configuration error, not a crash.
    EventQueue eq;
    Fabric fab(eq, "manual");
    RingPath ring;
    std::vector<Channel *> hops;
    for (int i = 0; i < 4; ++i)
        hops.push_back(&fab.makeChannel("h" + std::to_string(i), 1e9,
                                        0));
    for (int i = 0; i < 4; ++i) {
        ring.stages.push_back(RingStage{true, i});
        ring.hops.push_back(Route{{hops[static_cast<std::size_t>(i)]}});
    }
    fab.addRing(std::move(ring));
    const Route route = fab.deviceRoute(1, 3);
    ASSERT_EQ(route.hops.size(), 2u);
    EXPECT_EQ(route.hops[0], hops[1]);
    EXPECT_EQ(route.hops[1], hops[2]);
    EXPECT_EQ(fab.deviceHopCount(3, 1), 2);
    EXPECT_THROW(fab.router(), FatalError);
}

// ------------------------- deviceRoute / sub-ring regression cases

TEST_F(TopologyTest, SubRingTwoDeviceSubsetKeepsFullLoop)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());
    const RingPath &full = fab->rings()[0];

    // Adjacent pair: the restricted ring still walks all 16 channels.
    const RingPath adj = restrictRingToDevices(full, {0, 1});
    ASSERT_EQ(adj.deviceMembers(), (std::vector<int>{0, 1}));
    EXPECT_EQ(adj.physicalHopCount(), full.physicalHopCount());

    // Non-adjacent members: same full physical loop, device stages
    // collapse into store-and-forward hops.
    const RingPath far = restrictRingToDevices(full, {0, 5});
    ASSERT_EQ(far.deviceMembers(), (std::vector<int>{0, 5}));
    EXPECT_EQ(far.physicalHopCount(), full.physicalHopCount());
    // Memory-nodes stay full participants (8 of them + 2 devices).
    EXPECT_EQ(far.stageCount(), 10);
}

TEST_F(TopologyTest, SubRingDegenerateCases)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());
    const RingPath &full = fab->rings()[0];
    // Single member and absent members yield an empty ring.
    EXPECT_EQ(restrictRingToDevices(full, {3}).stageCount(), 0);
    EXPECT_EQ(restrictRingToDevices(full, {}).stageCount(), 0);
    EXPECT_EQ(restrictRingToDevices(full, {91, 92}).stageCount(), 0);
    // One present + one absent member: still fewer than two members.
    EXPECT_EQ(restrictRingToDevices(full, {0, 91}).stageCount(), 0);
}

TEST_F(TopologyTest, P2pRoutesBetweenSubsetMembersUseWholeFabric)
{
    // Pipeline-style point-to-point routing is not restricted by a
    // job's device subset: the route between devices 2 and 5 is the
    // same whether or not other devices are busy.
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());
    const Route r25 = fab->deviceRoute(2, 5);
    ASSERT_TRUE(r25.valid());
    EXPECT_EQ(r25.hops.size(), 6u); // 3 D->M->D segments
    const Route r52 = fab->deviceRoute(5, 2);
    ASSERT_TRUE(r52.valid());
    EXPECT_EQ(r52.hops.size(), 6u);
    // Opposite directions use disjoint channels.
    for (Channel *ch : r25.hops)
        EXPECT_EQ(std::find(r52.hops.begin(), r52.hops.end(), ch),
                  r52.hops.end());
}

// -------------------------------------------------- generic generators

TEST_F(TopologyTest, Mesh2dShapeAndRouting)
{
    EventQueue eq;
    auto fab = buildMesh2dFabric(eq, testConfig(8), /*wrap=*/false);
    const Topology &topo = fab->topology();
    EXPECT_EQ(topo.count(NodeKind::Device), 8);
    EXPECT_EQ(topo.count(NodeKind::MemoryNode), 8);
    // 2x4 grid: 6 horizontal + 4 vertical edges, 2 channels each,
    // + 8 DIMM buses + 8 devices x 2 lanes x 2 directions.
    EXPECT_EQ(topo.links().size(), 20u + 8u + 32u);
    // Corner-to-corner: (rows-1) + (cols-1) = 4 grid hops.
    EXPECT_EQ(fab->deviceHopCount(0, 7), 4);
    // No wraparound: 0 -> 3 walks the row.
    EXPECT_EQ(fab->deviceHopCount(0, 3), 3);
    EXPECT_TRUE(fab->router().fullyConnected());
    // Two serpentine rings over all devices.
    ASSERT_EQ(fab->rings().size(), 2u);
    for (const RingPath &ring : fab->rings())
        EXPECT_EQ(ring.deviceMembers().size(), 8u);
    // Dedicated memory-node per device.
    ASSERT_EQ(fab->vmemPaths(2).size(), 1u);
    EXPECT_EQ(fab->vmemPaths(2)[0].targetIndex, 2);
    EXPECT_EQ(fab->vmemPaths(2)[0].writeRoutes.size(), 2u);
}

TEST_F(TopologyTest, Torus2dWrapsTheLongDimension)
{
    EventQueue eq;
    auto mesh = buildMesh2dFabric(eq, testConfig(8), false);
    auto torus = buildMesh2dFabric(eq, testConfig(8), true);
    // 2x4: only the 4-wide dimension wraps (2 rows already adjacent).
    EXPECT_EQ(torus->topology().links().size(),
              mesh->topology().links().size() + 4u);
    // The wraparound shortens the row walk.
    EXPECT_EQ(torus->deviceHopCount(0, 3), 1);
    EXPECT_EQ(torus->deviceHopCount(0, 2), 2);
}

TEST_F(TopologyTest, FatTreeSeatsNodesAndRoutes)
{
    EventQueue eq;
    // 16 nodes fit one 36-port leaf: all pairs 2 hops, no spines.
    FabricConfig one_leaf = testConfig(8);
    one_leaf.switchRadix = 36;
    auto small = buildFatTreeFabric(eq, one_leaf);
    EXPECT_EQ(small->topology().count(NodeKind::Switch), 1);
    EXPECT_EQ(small->deviceHopCount(0, 7), 2);

    // 16 devices on radix 18: 4 leaves + 9 spines; same-leaf pairs
    // stay at 2 hops, cross-leaf pairs cross a spine (4 hops).
    FabricConfig big = testConfig(16);
    auto fab = buildFatTreeFabric(eq, big);
    EXPECT_EQ(fab->topology().count(NodeKind::Switch), 4 + 9);
    EXPECT_EQ(fab->deviceHopCount(0, 1), 2);  // slots 0,2 on leaf 0
    EXPECT_EQ(fab->deviceHopCount(0, 15), 4); // leaf 0 -> leaf 3
    EXPECT_TRUE(fab->router().fullyConnected());
    // vmem reaches the device's own memory-node on the shared leaf.
    ASSERT_EQ(fab->vmemPaths(0).size(), 1u);
    EXPECT_EQ(fab->vmemPaths(0)[0].writeRoutes[0].hops.size(), 3u);

    // A radix too small for the node count is a configuration error.
    FabricConfig tiny = testConfig(16);
    tiny.switchRadix = 4;
    EXPECT_THROW(buildFatTreeFabric(eq, tiny), FatalError);
}

TEST_F(TopologyTest, TopologyKindRoundTrips)
{
    for (TopologyKind kind : allTopologyKinds()) {
        EXPECT_EQ(parseTopologyKind(topologyKindToken(kind)), kind);
        EXPECT_EQ(parseTopologyKind(topologyKindName(kind)), kind);
    }
    EXPECT_THROW(parseTopologyKind("hypercube"), FatalError);
    EXPECT_NE(topologyKindTokenList().find("fat-tree"),
              std::string::npos);
}

// --------------------------------------------------- config validation

TEST_F(TopologyTest, FabricConfigValidateRejectsNonsense)
{
    FabricConfig good;
    EXPECT_NO_THROW(good.validate());

    FabricConfig bad = good;
    bad.linkBandwidth = 0.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.numDevices = 0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.numSockets = 0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.pcieEfficiency = 1.5;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.memNodeBandwidth = -1.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.socketBandwidth = -1.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = good;
    bad.peakWindow = 0;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST_F(TopologyTest, SystemConstructionValidatesTheFabric)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.device.linkBandwidth = -5.0; // propagates into the fabric
    EXPECT_THROW(System(eq, cfg), FatalError);
}

TEST_F(TopologyTest, TopologyOverrideRequiresMemoryNodes)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDla;
    cfg.fabric.topology = TopologyKind::Mesh2d;
    EXPECT_THROW(System(eq, cfg), FatalError);
}

// ------------------------------------------- collective algorithms

/** All-reduce completion time on a fresh fabric of @p kind. */
Tick
allReduceTicks(TopologyKind kind, CollectiveAlgorithm algo,
               double bytes, int devices)
{
    EventQueue eq;
    FabricConfig cfg;
    cfg.numDevices = devices;
    cfg.switchRadix = 4 * devices;
    auto fabric = buildTopologyFabric(eq, cfg, kind);
    CollectiveConfig ccfg;
    ccfg.algorithm = algo;
    CollectiveEngine engine(eq, "test.nccl", *fabric, ccfg);
    Tick done = 0;
    engine.launch(CollectiveKind::AllReduce, bytes,
                  [&] { done = eq.now(); });
    eq.run();
    EXPECT_GT(done, 0u);
    return done;
}

TEST_F(TopologyTest, TreeBeatsRingForSmallPayloadsAndLosesForLarge)
{
    // Same topology (the fully-connected switch), same payload axis:
    // the binomial tree's O(log n) rounds win while latency
    // dominates, and lose once every hop must move the full payload.
    const Tick ring_small = allReduceTicks(
        TopologyKind::FullSwitch, CollectiveAlgorithm::Ring, 64e3, 16);
    const Tick tree_small = allReduceTicks(
        TopologyKind::FullSwitch, CollectiveAlgorithm::Tree, 64e3, 16);
    EXPECT_LT(tree_small, ring_small);

    const Tick ring_large = allReduceTicks(
        TopologyKind::FullSwitch, CollectiveAlgorithm::Ring, 64e6, 16);
    const Tick tree_large = allReduceTicks(
        TopologyKind::FullSwitch, CollectiveAlgorithm::Tree, 64e6, 16);
    EXPECT_GT(tree_large, ring_large);
}

TEST_F(TopologyTest, HierarchicalBeatsFlatRingOnScaleOutFabric)
{
    // On the switched scale-out fabric the flat ring serializes 2n
    // stages of switch latency; two-level reduction cuts that.
    const Tick flat = allReduceTicks(TopologyKind::FullSwitch,
                                     CollectiveAlgorithm::Ring, 64e3,
                                     16);
    const Tick hier = allReduceTicks(TopologyKind::FullSwitch,
                                     CollectiveAlgorithm::Hierarchical,
                                     64e3, 16);
    EXPECT_LT(hier, flat);
}

TEST_F(TopologyTest, CollectiveAlgorithmRoundTrips)
{
    for (CollectiveAlgorithm algo : allCollectiveAlgorithms())
        EXPECT_EQ(parseCollectiveAlgorithm(
                      collectiveAlgorithmToken(algo)),
                  algo);
    EXPECT_EQ(parseCollectiveAlgorithm("hier"),
              CollectiveAlgorithm::Hierarchical);
    EXPECT_THROW(parseCollectiveAlgorithm("butterfly"), FatalError);
}

TEST_F(TopologyTest, TreeCollectiveCompletesEveryKind)
{
    EventQueue eq;
    FabricConfig cfg;
    auto fabric = buildMcdlaRingFabric(eq, cfg);
    CollectiveConfig ccfg;
    ccfg.algorithm = CollectiveAlgorithm::Tree;
    CollectiveEngine engine(eq, "test.nccl", *fabric, ccfg);
    int completed = 0;
    for (CollectiveKind kind :
         {CollectiveKind::AllReduce, CollectiveKind::AllGather,
          CollectiveKind::ReduceScatter, CollectiveKind::Broadcast}) {
        engine.launch(kind, 1e6, [&] { ++completed; }, /*root=*/3);
        eq.run();
    }
    EXPECT_EQ(completed, 4);
    EXPECT_EQ(engine.opsCompleted(), 4u);
}

// --------------------------------------------- scenario / label wiring

TEST_F(TopologyTest, ScenarioLabelCarriesInterconnectOverrides)
{
    Scenario sc;
    EXPECT_EQ(sc.label(), "ResNet/mc-b/dp/b512");
    sc.base.fabric.topology = TopologyKind::Torus2d;
    sc.base.collectiveAlgorithm = CollectiveAlgorithm::Tree;
    EXPECT_EQ(sc.label(), "ResNet/mc-b/dp/b512/torus2d/tree");
}

TEST_F(TopologyTest, TrainingRunsOnGenericTopologies)
{
    // A full training iteration routes collectives, paging DMA, and
    // weight updates over the generated graphs end to end.
    Simulator sim;
    for (TopologyKind kind :
         {TopologyKind::Mesh2d, TopologyKind::FatTree}) {
        Scenario sc;
        sc.workload = "AlexNet";
        sc.globalBatch = 64;
        sc.base.fabric.topology = kind;
        const IterationResult result = sim.run(sc);
        EXPECT_GT(result.makespan, 0u) << topologyKindToken(kind);
        EXPECT_GT(result.syncBytes, 0.0);
    }
}

// --------------------------------------------------- job placement

TEST_F(TopologyTest, CompactPlacementUsesRealHopCounts)
{
    EventQueue eq;
    auto fab = buildMcdlaRingFabric(eq, testConfig());

    // A contiguous free set degrades to the legacy first-fit choice.
    const std::vector<int> all{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(placeJobDevices(*fab, all, 3, JobPlacement::First),
              (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(placeJobDevices(*fab, all, 3, JobPlacement::Compact),
              (std::vector<int>{0, 1, 2}));

    // Fragmented free set: first-fit takes the low indices; compact
    // notices 1 and 7 are ring neighbors (4 channel traversals round
    // trip) while 1 and 4 are antipodal (12).
    const std::vector<int> frag{1, 4, 7};
    EXPECT_EQ(placeJobDevices(*fab, frag, 2, JobPlacement::First),
              (std::vector<int>{1, 4}));
    EXPECT_EQ(placeJobDevices(*fab, frag, 2, JobPlacement::Compact),
              (std::vector<int>{1, 7}));

    // Asking for everything hands back the whole free set.
    EXPECT_EQ(
        placeJobDevices(*fab, frag, 3, JobPlacement::Compact).size(),
        3u);
}

TEST_F(TopologyTest, PlacementTokenRoundTrips)
{
    EXPECT_EQ(parseJobPlacement("first"), JobPlacement::First);
    EXPECT_EQ(parseJobPlacement("compact"), JobPlacement::Compact);
    EXPECT_STREQ(jobPlacementToken(JobPlacement::Compact), "compact");
    EXPECT_THROW(parseJobPlacement("spread"), FatalError);
}

TEST_F(TopologyTest, CompactClusterRunsJobsOnAdjacentDevices)
{
    ClusterConfig cfg;
    cfg.base.workload = "AlexNet";
    cfg.placement = JobPlacement::Compact;

    std::vector<JobSpec> jobs;
    for (int j = 0; j < 2; ++j) {
        JobSpec spec;
        spec.name = "job" + std::to_string(j);
        spec.workload = "AlexNet";
        spec.batch = 64;
        spec.devices = 2;
        spec.arrivalSec = 0.0;
        jobs.push_back(spec);
    }
    Cluster cluster(cfg, std::move(jobs));
    const ClusterReport report = cluster.run();
    EXPECT_EQ(report.placement, JobPlacement::Compact);
    ASSERT_EQ(report.completedJobs(), 2u);
    for (const JobOutcome &job : report.jobs) {
        ASSERT_EQ(job.devices.size(), 2u);
        // Ring neighbors: two channel traversals apart.
        EXPECT_EQ(cluster.system().fabric().deviceHopCount(
                      job.devices[0], job.devices[1]),
                  2);
    }
}

// ------------------------------------------ per-channel utilization

TEST_F(TopologyTest, IterationResultSurfacesChannelUsage)
{
    Simulator sim;
    Scenario sc;
    sc.workload = "AlexNet";
    sc.globalBatch = 64;
    const IterationResult result = sim.run(sc);

    ASSERT_FALSE(result.channels.empty());
    double max_util = 0.0;
    double total_bytes = 0.0;
    for (const ChannelUsage &usage : result.channels) {
        EXPECT_FALSE(usage.channel.empty());
        EXPECT_GE(usage.utilization, 0.0);
        EXPECT_LE(usage.utilization, 1.0 + 1e-9);
        max_util = std::max(max_util, usage.utilization);
        total_bytes += usage.bytes;
    }
    EXPECT_GT(total_bytes, 0.0);

    const ChannelUsage *bottleneck = result.bottleneckChannel();
    ASSERT_NE(bottleneck, nullptr);
    EXPECT_DOUBLE_EQ(bottleneck->utilization, max_util);

    // The CSV pipeline emits one row per channel.
    ResultSet table(channelUsageColumns());
    appendChannelUsageRows(table, sc.label(), result);
    EXPECT_EQ(table.rowCount(), result.channels.size());
    EXPECT_EQ(std::get<std::string>(table.cell(0, 0)), sc.label());
}

} // anonymous namespace
} // namespace mcdla
