/**
 * @file
 * Unit tests for the memory system: the Table IV DIMM catalog and power
 * model, memory-node configuration, and the Fig 10 address space with
 * LOCAL / BW_AWARE page placement.
 */

#include <gtest/gtest.h>

#include "memory/address_map.hh"
#include "memory/dimm.hh"
#include "memory/memory_node.hh"
#include "sim/logging.hh"
#include "system/system.hh"

namespace mcdla
{
namespace
{

class ThrowingErrors : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

// ------------------------------------------------------------ DIMMs

TEST(Dimm, CatalogMatchesTableIV)
{
    const auto &catalog = dimmCatalog();
    ASSERT_EQ(catalog.size(), 5u);

    struct Row { unsigned gib; double tdp; double gb_per_watt; };
    // Table IV: module TDP and node GB/W at DDR4-2400.
    const Row rows[] = {
        {8, 2.9, 2.8}, {16, 6.6, 2.4}, {32, 8.7, 3.7},
        {64, 10.2, 6.3}, {128, 12.7, 10.1},
    };
    for (const Row &row : rows) {
        const DimmSpec &spec = dimmByCapacityGib(row.gib);
        EXPECT_DOUBLE_EQ(spec.tdpWatts, row.tdp) << row.gib;
        MemoryNodeConfig node;
        node.dimm = spec;
        EXPECT_NEAR(node.gbPerWatt(), row.gb_per_watt, 0.1) << row.gib;
        EXPECT_NEAR(node.tdpWatts(), row.tdp * 10.0, 1e-9) << row.gib;
    }
}

TEST(Dimm, ClassesMatchTableIV)
{
    EXPECT_EQ(dimmByCapacityGib(8).dimmClass, DimmClass::RDIMM);
    EXPECT_EQ(dimmByCapacityGib(16).dimmClass, DimmClass::RDIMM);
    EXPECT_EQ(dimmByCapacityGib(32).dimmClass, DimmClass::LRDIMM);
    EXPECT_EQ(dimmByCapacityGib(64).dimmClass, DimmClass::LRDIMM);
    EXPECT_EQ(dimmByCapacityGib(128).dimmClass, DimmClass::LRDIMM);
}

TEST_F(ThrowingErrors, UnknownDimmCapacityIsFatal)
{
    EXPECT_THROW(dimmByCapacityGib(48), FatalError);
}

// ------------------------------------------- memory-node validation

TEST(MemoryNode, DefaultConfigValidates)
{
    MemoryNodeConfig node;
    node.validate(); // must not throw
}

TEST_F(ThrowingErrors, LinksMustPartitionIntoGroups)
{
    MemoryNodeConfig node;
    node.numLinks = 5;
    node.linkGroups = 2; // 5 % 2 != 0 would silently mis-partition
    EXPECT_THROW(node.validate(), FatalError);
    node.numLinks = 6;
    node.validate();
}

TEST_F(ThrowingErrors, NonPositiveBoardParametersAreFatal)
{
    MemoryNodeConfig node;
    node.numDimms = 0;
    EXPECT_THROW(node.validate(), FatalError);
    node.numDimms = -2;
    EXPECT_THROW(node.validate(), FatalError);

    node = MemoryNodeConfig{};
    node.numLinks = 0;
    EXPECT_THROW(node.validate(), FatalError);

    node = MemoryNodeConfig{};
    node.linkGroups = 0;
    EXPECT_THROW(node.validate(), FatalError);

    node = MemoryNodeConfig{};
    node.linkBandwidth = 0.0;
    EXPECT_THROW(node.validate(), FatalError);
}

TEST_F(ThrowingErrors, SystemRejectsABrokenMemoryNode)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    cfg.memNode.numLinks = 7; // 7 % 2 != 0
    EXPECT_THROW(System(eq, cfg), FatalError);
}

TEST(Dimm, SpeedGrades)
{
    EXPECT_DOUBLE_EQ(ddrSpeedBandwidth(DdrSpeed::DDR4_2133), 17.0 * kGB);
    EXPECT_DOUBLE_EQ(ddrSpeedBandwidth(DdrSpeed::DDR4_3200), 25.6 * kGB);
    EXPECT_STREQ(ddrSpeedName(DdrSpeed::DDR4_3200), "PC4-25600");
}

TEST(Dimm, OperatingPowerScalesWithUtilization)
{
    const DimmSpec &spec = dimmByCapacityGib(64);
    EXPECT_DOUBLE_EQ(dimmOperatingPower(spec, 1.0), spec.tdpWatts);
    EXPECT_LT(dimmOperatingPower(spec, 0.0), spec.tdpWatts * 0.5);
    EXPECT_LT(dimmOperatingPower(spec, 0.5),
              dimmOperatingPower(spec, 1.0));
    // Clamped outside [0, 1].
    EXPECT_DOUBLE_EQ(dimmOperatingPower(spec, 2.0), spec.tdpWatts);
}

// ------------------------------------------------------- memory node

TEST(MemoryNode, SectionIIIACapacityRange)
{
    MemoryNodeConfig node;
    node.dimm = dimmByCapacityGib(8);
    // "80 GB ... per memory-node" with ten 8 GB RDIMMs.
    EXPECT_EQ(node.capacity(), 80u * kGiB);
    node.dimm = dimmByCapacityGib(128);
    // "... to 1.3 TB" with ten 128 GB LRDIMMs.
    EXPECT_EQ(node.capacity(), 1280u * kGiB);
}

TEST(MemoryNode, BandwidthMatchesSpeedGrade)
{
    MemoryNodeConfig node;
    node.speed = DdrSpeed::DDR4_2133;
    EXPECT_DOUBLE_EQ(node.bandwidth(), 170.0 * kGB); // PC4-17000
    node.speed = DdrSpeed::DDR4_3200;
    EXPECT_DOUBLE_EQ(node.bandwidth(), 256.0 * kGB); // Table II
}

TEST(MemoryNode, PowerOverheadsMatchSectionVC)
{
    SystemPowerModel power; // DGX-1V: 3,200 W, 8 memory-nodes
    MemoryNodeConfig rdimm8;
    rdimm8.dimm = dimmByCapacityGib(8);
    // 8 GB RDIMM nodes: +232 W = ~7% increase.
    EXPECT_NEAR(power.addedWatts(rdimm8), 232.0, 1.0);
    EXPECT_NEAR(power.powerOverhead(rdimm8), 0.07, 0.01);

    MemoryNodeConfig lrdimm128;
    lrdimm128.dimm = dimmByCapacityGib(128);
    // 128 GB LRDIMM nodes: +1,016 W = ~31% increase, 10.4 TB pool.
    EXPECT_NEAR(power.addedWatts(lrdimm128), 1016.0, 1.0);
    EXPECT_NEAR(power.powerOverhead(lrdimm128), 0.31, 0.01);
    EXPECT_NEAR(static_cast<double>(power.pooledCapacity(lrdimm128)),
                10.4e12, 0.7e12);
}

TEST(MemoryNode, PerfPerWattMatchesSectionVC)
{
    SystemPowerModel power;
    MemoryNodeConfig rdimm8;
    rdimm8.dimm = dimmByCapacityGib(8);
    MemoryNodeConfig lrdimm128;
    lrdimm128.dimm = dimmByCapacityGib(128);
    // Paper: 2.8x speedup yields 2.6x (8 GB) to 2.1x (128 GB) perf/W.
    EXPECT_NEAR(power.perfPerWattGain(rdimm8, 2.8), 2.6, 0.05);
    EXPECT_NEAR(power.perfPerWattGain(lrdimm128, 2.8), 2.1, 0.05);
}

// ------------------------------------------------------ address space

std::vector<RemoteRegion>
twoNeighbors(std::uint64_t half = 640 * kGiB)
{
    return {RemoteRegion{0, half}, RemoteRegion{7, half}};
}

TEST(AddressSpace, CapacityAccounting)
{
    DeviceAddressSpace space("d0", 16 * kGiB, twoNeighbors());
    EXPECT_EQ(space.localCapacity(), 16u * kGiB);
    EXPECT_EQ(space.remoteCapacity(), 1280u * kGiB);
    EXPECT_EQ(space.totalCapacity(), 1296u * kGiB);
    EXPECT_EQ(space.regionCount(), 2u);
}

TEST(AddressSpace, LocalAllocationRoundsToPages)
{
    DeviceAddressSpace space("d0", 16 * kGiB, twoNeighbors());
    const Placement p = space.mallocLocal(1);
    EXPECT_EQ(p.bytes, 2u * kMiB);
    EXPECT_FALSE(p.remote);
    EXPECT_EQ(space.localUsed(), 2u * kMiB);
    space.free(p);
    EXPECT_EQ(space.localUsed(), 0u);
}

TEST(AddressSpace, BwAwareSplitsAcrossBothNeighbors)
{
    DeviceAddressSpace space("d0", 16 * kGiB, twoNeighbors());
    const Placement p =
        space.mallocRemote(512 * kMiB, PagePolicy::BwAware);
    EXPECT_TRUE(p.remote);
    ASSERT_EQ(p.fractions.size(), 2u);
    EXPECT_NEAR(p.fractions[0], 0.5, 0.01);
    EXPECT_NEAR(p.fractions[1], 0.5, 0.01);
}

TEST(AddressSpace, LocalPolicyUsesSingleNode)
{
    DeviceAddressSpace space("d0", 16 * kGiB, twoNeighbors());
    const Placement p =
        space.mallocRemote(512 * kMiB, PagePolicy::Local);
    ASSERT_EQ(p.fractions.size(), 2u);
    EXPECT_DOUBLE_EQ(p.fractions[0] + p.fractions[1], 1.0);
    EXPECT_TRUE(p.fractions[0] == 1.0 || p.fractions[1] == 1.0);
}

TEST(AddressSpace, LocalPolicyBalancesAcrossAllocations)
{
    DeviceAddressSpace space("d0", 16 * kGiB, twoNeighbors());
    const Placement a =
        space.mallocRemote(256 * kMiB, PagePolicy::Local);
    const Placement b =
        space.mallocRemote(256 * kMiB, PagePolicy::Local);
    // Least-used placement alternates between the two nodes.
    EXPECT_NE(a.fractions[0], b.fractions[0]);
}

TEST(AddressSpace, RemoteUsageTracksAndFrees)
{
    DeviceAddressSpace space("d0", 16 * kGiB, twoNeighbors());
    const Placement p =
        space.mallocRemote(100 * kMiB, PagePolicy::BwAware);
    EXPECT_EQ(space.remoteUsed(), p.bytes);
    space.free(p);
    EXPECT_EQ(space.remoteUsed(), 0u);
}

TEST_F(ThrowingErrors, LocalExhaustionIsFatal)
{
    DeviceAddressSpace space("d0", 16 * kMiB, twoNeighbors());
    EXPECT_THROW(space.mallocLocal(32 * kMiB), FatalError);
}

TEST_F(ThrowingErrors, RemoteExhaustionIsFatal)
{
    DeviceAddressSpace space("d0", 16 * kGiB, twoNeighbors(8 * kMiB));
    EXPECT_THROW(space.mallocRemote(64 * kMiB, PagePolicy::BwAware),
                 FatalError);
    EXPECT_THROW(space.mallocRemote(64 * kMiB, PagePolicy::Local),
                 FatalError);
}

TEST_F(ThrowingErrors, RemoteWithoutRegionsIsFatal)
{
    DeviceAddressSpace space("oracle", 1ULL << 50, {});
    EXPECT_THROW(space.mallocRemote(1 * kMiB, PagePolicy::Local),
                 FatalError);
}

TEST(AddressSpace, SingleRegionBwAwareDegradesToLocal)
{
    DeviceAddressSpace space("d0", 16 * kGiB,
                             {RemoteRegion{3, 640 * kGiB}});
    const Placement p =
        space.mallocRemote(64 * kMiB, PagePolicy::BwAware);
    ASSERT_EQ(p.fractions.size(), 1u);
    EXPECT_DOUBLE_EQ(p.fractions[0], 1.0);
}

TEST(AddressSpace, FitsLocalPredicate)
{
    DeviceAddressSpace space("d0", 10 * kMiB, {});
    EXPECT_TRUE(space.fitsLocal(10 * kMiB));
    EXPECT_FALSE(space.fitsLocal(11 * kMiB));
    space.mallocLocal(4 * kMiB);
    EXPECT_TRUE(space.fitsLocal(6 * kMiB));
    EXPECT_FALSE(space.fitsLocal(7 * kMiB));
}

TEST(PagePolicy, Names)
{
    EXPECT_STREQ(pagePolicyName(PagePolicy::Local), "LOCAL");
    EXPECT_STREQ(pagePolicyName(PagePolicy::BwAware), "BW_AWARE");
}

} // anonymous namespace
} // namespace mcdla
