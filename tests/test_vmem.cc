/**
 * @file
 * Unit tests for the virtual-memory runtime: the vDNN offload plan, the
 * DMA engine, the Table I API, and the Fig 10 LOCAL-vs-BW_AWARE latency
 * relation.
 */

#include <gtest/gtest.h>

#include "dnn/builders.hh"
#include "interconnect/fabrics.hh"
#include "sim/logging.hh"
#include "vmem/dma_engine.hh"
#include "vmem/offload_plan.hh"
#include "vmem/runtime.hh"

namespace mcdla
{
namespace
{

class ThrowingErrors : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

// --------------------------------------------------------- offload plan

TEST(OffloadPlan, HeavyLayersOffloadCheapRecompute)
{
    const Network net = builders::buildAlexNet();
    const OffloadPlan plan(net, OffloadPolicy{});
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        const Layer &layer = net.layer(id);
        const TensorAction action = plan.entry(id).action;
        switch (layer.costClass()) {
          case CostClass::Heavy:
            EXPECT_EQ(action, TensorAction::Offload) << layer.name();
            break;
          case CostClass::Cheap:
            EXPECT_TRUE(action == TensorAction::Recompute
                        || action == TensorAction::None)
                << layer.name();
            break;
          case CostClass::Structural:
            // The CNN input tensor is offloaded (it is conv1's X).
            if (layer.kind() == LayerKind::Input)
                EXPECT_EQ(action, TensorAction::Offload);
            else
                EXPECT_EQ(action, TensorAction::None) << layer.name();
            break;
        }
    }
    EXPECT_GT(plan.offloadBytesPerSample(), 0u);
    EXPECT_EQ(plan.residentBytesPerSample(), 0u);
}

TEST(OffloadPlan, OracleKeepsEverythingLocal)
{
    const Network net = builders::buildAlexNet();
    OffloadPolicy policy;
    policy.virtualizeMemory = false;
    const OffloadPlan plan(net, policy);
    EXPECT_EQ(plan.offloadCount(), 0u);
    EXPECT_EQ(plan.offloadBytesPerSample(), 0u);
    EXPECT_GT(plan.residentBytesPerSample(), 0u);
}

TEST(OffloadPlan, RecomputeOffMigratesCheapLayersToo)
{
    const Network net = builders::buildAlexNet();
    OffloadPolicy with, without;
    without.recomputeCheapLayers = false;
    const OffloadPlan plan_with(net, with);
    const OffloadPlan plan_without(net, without);
    EXPECT_GT(plan_without.offloadBytesPerSample(),
              plan_with.offloadBytesPerSample());
    EXPECT_TRUE(plan_with.recomputedLayers().size() > 0);
    EXPECT_TRUE(plan_without.recomputedLayers().empty());
}

TEST(OffloadPlan, RecurrentCellsCarryTheirSlices)
{
    const Network net = builders::buildRnnLstm1(4, 64);
    const OffloadPlan plan(net, OffloadPolicy{});
    // The monolithic input sequence is not offloaded...
    EXPECT_EQ(plan.entry(0).action, TensorAction::None);
    // ...but every cell is, including its gate stash.
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        if (!net.layer(id).isRecurrent())
            continue;
        EXPECT_EQ(plan.entry(id).action, TensorAction::Offload);
        EXPECT_GT(plan.entry(id).auxBytesPerSample, 0u);
    }
}

TEST(OffloadPlan, BytesMatchManualSum)
{
    const Network net = builders::buildVggE();
    const OffloadPlan plan(net, OffloadPolicy{});
    std::uint64_t expected = 0;
    for (const TensorPlan &entry : plan.entries())
        if (entry.action == TensorAction::Offload)
            expected += entry.totalBytesPerSample();
    EXPECT_EQ(plan.offloadBytesPerSample(), expected);
}

TEST(OffloadPlan, ActionNames)
{
    EXPECT_STREQ(tensorActionName(TensorAction::Offload), "offload");
    EXPECT_STREQ(tensorActionName(TensorAction::Recompute), "recompute");
    EXPECT_STREQ(tensorActionName(TensorAction::KeepLocal),
                 "keep-local");
    EXPECT_STREQ(tensorActionName(TensorAction::None), "none");
}

// ----------------------------------------------------------- DMA engine

class DmaTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fabric = buildMcdlaRingFabric(eq, FabricConfig{});
    }

    EventQueue eq;
    std::unique_ptr<Fabric> fabric;
};

TEST_F(DmaTest, OffloadCompletesAtExpectedBandwidth)
{
    DmaEngine dma(eq, "dma0", fabric->vmemPaths(0));
    ASSERT_TRUE(dma.hasBackingStore());
    EXPECT_EQ(dma.pathCount(), 2u);

    Tick done = 0;
    // Even spread across both neighbors: all 6 links = 150 GB/s.
    dma.transfer(150e6, DmaDirection::LocalToRemote,
                 [&] { done = eq.now(); });
    eq.run();
    const double seconds = ticksToSeconds(done);
    EXPECT_NEAR(seconds, 1e-3, 0.15e-3);
    EXPECT_DOUBLE_EQ(dma.bytesOffloaded(), 150e6);
}

TEST_F(DmaTest, SingleTargetIsHalfBandwidth)
{
    DmaEngine dma(eq, "dma0", fabric->vmemPaths(0));
    Tick done = 0;
    dma.transfer(150e6, DmaDirection::LocalToRemote, {1.0, 0.0},
                 [&] { done = eq.now(); });
    eq.run();
    // 3 links = 75 GB/s -> ~2 ms: Fig 10's LOCAL/BW_AWARE 2x relation.
    EXPECT_NEAR(ticksToSeconds(done), 2e-3, 0.3e-3);
}

TEST_F(DmaTest, PrefetchUsesReadRoutes)
{
    DmaEngine dma(eq, "dma0", fabric->vmemPaths(0));
    Tick done = 0;
    dma.transfer(75e6, DmaDirection::RemoteToLocal,
                 [&] { done = eq.now(); });
    eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_DOUBLE_EQ(dma.bytesPrefetched(), 75e6);
    EXPECT_DOUBLE_EQ(dma.bytesOffloaded(), 0.0);
}

TEST_F(DmaTest, ZeroByteTransferCompletes)
{
    DmaEngine dma(eq, "dma0", fabric->vmemPaths(0));
    bool done = false;
    dma.transfer(0.0, DmaDirection::LocalToRemote, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
}

TEST_F(DmaTest, NoBackingStoreIsFatal)
{
    LogConfig::throwOnError = true;
    DmaEngine dma(eq, "dma0", {});
    EXPECT_FALSE(dma.hasBackingStore());
    EXPECT_THROW(dma.transfer(1e3, DmaDirection::LocalToRemote, nullptr),
                 FatalError);
    LogConfig::throwOnError = false;
}

// ------------------------------------------------------- Table I runtime

class RuntimeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fabric = buildMcdlaRingFabric(eq, FabricConfig{});
        space = std::make_unique<DeviceAddressSpace>(
            "d0", 16 * kGiB,
            std::vector<RemoteRegion>{RemoteRegion{0, 640 * kGiB},
                                      RemoteRegion{7, 640 * kGiB}});
        dma = std::make_unique<DmaEngine>(eq, "dma0",
                                          fabric->vmemPaths(0));
    }

    EventQueue eq;
    std::unique_ptr<Fabric> fabric;
    std::unique_ptr<DeviceAddressSpace> space;
    std::unique_ptr<DmaEngine> dma;
};

TEST_F(RuntimeTest, MallocMemcpyFreeRoundTrip)
{
    VmemRuntime rt(*space, *dma, PagePolicy::BwAware);
    const RemotePtr ptr = rt.mallocRemote(64 * kMiB);
    ASSERT_NE(ptr, invalidRemotePtr);
    EXPECT_EQ(rt.liveAllocations(), 1u);

    Tick offloaded = 0, prefetched = 0;
    rt.memcpyAsync(ptr, 64.0 * kMiB, DmaDirection::LocalToRemote,
                   [&] { offloaded = eq.now(); });
    eq.run();
    rt.memcpyAsync(ptr, 64.0 * kMiB, DmaDirection::RemoteToLocal,
                   [&] { prefetched = eq.now(); });
    eq.run();
    EXPECT_GT(offloaded, 0u);
    EXPECT_GT(prefetched, offloaded);

    rt.freeRemote(ptr);
    EXPECT_EQ(rt.liveAllocations(), 0u);
    EXPECT_EQ(space->remoteUsed(), 0u);
}

TEST_F(RuntimeTest, BwAwarePlacementEngagesBothNodes)
{
    VmemRuntime rt(*space, *dma, PagePolicy::BwAware);
    const RemotePtr ptr = rt.mallocRemote(64 * kMiB);
    const Placement &p = rt.placement(ptr);
    EXPECT_NEAR(p.fractions[0], 0.5, 0.01);
    EXPECT_NEAR(p.fractions[1], 0.5, 0.01);
}

TEST_F(RuntimeTest, LocalVsBwAwareLatencyIsTwoToOne)
{
    // Fig 10: Latency_LOCAL = D/(N*B/2), Latency_BW_AWARE = D/(N*B).
    VmemRuntime local(*space, *dma, PagePolicy::Local);
    VmemRuntime aware(*space, *dma, PagePolicy::BwAware);
    const double bytes = 96e6;

    const RemotePtr pl = local.mallocRemote(
        static_cast<std::uint64_t>(bytes));
    Tick t_local = 0;
    local.memcpyAsync(pl, bytes, DmaDirection::LocalToRemote,
                      [&] { t_local = eq.now(); });
    eq.run();

    const Tick base = eq.now();
    const RemotePtr pa = aware.mallocRemote(
        static_cast<std::uint64_t>(bytes));
    Tick t_aware = 0;
    aware.memcpyAsync(pa, bytes, DmaDirection::LocalToRemote,
                      [&] { t_aware = eq.now() - base; });
    eq.run();

    EXPECT_NEAR(static_cast<double>(t_local),
                2.0 * static_cast<double>(t_aware),
                0.25 * static_cast<double>(t_local));
}

TEST_F(RuntimeTest, ErrorsOnBadHandles)
{
    LogConfig::throwOnError = true;
    VmemRuntime rt(*space, *dma, PagePolicy::BwAware);
    EXPECT_THROW(rt.freeRemote(42), FatalError);
    EXPECT_THROW(rt.placement(42), FatalError);
    const RemotePtr ptr = rt.mallocRemote(2 * kMiB);
    EXPECT_THROW(rt.memcpyAsync(ptr, 64.0 * kMiB,
                                DmaDirection::LocalToRemote, nullptr),
                 FatalError);
    LogConfig::throwOnError = false;
}

} // anonymous namespace
} // namespace mcdla
