/**
 * @file
 * Unit tests for the paged device-memory subsystem: PageTable
 * residency/accounting, eviction-policy victim selection, the policy
 * string round-trips, the Scenario plumbing of the paging knobs, and
 * end-to-end invariants of the static-plan / on-demand / history
 * prefetch policies on real workloads.
 */

#include <gtest/gtest.h>

#include "core/mcdla.hh"
#include "core/options.hh"
#include "sim/logging.hh"

namespace mcdla
{
namespace
{

// ---------------------------------------------------------- page table

TEST(PageTable, LifecycleAndAccounting)
{
    PageTable table(1000, true);
    table.addEntry(0, 400, 5);
    table.addEntry(1, 300, 7);
    EXPECT_TRUE(table.enforcing());
    EXPECT_EQ(table.freeBytes(), 1000u);

    table.produce(0, 10);
    table.produce(1, 20);
    EXPECT_EQ(table.usedBytes(), 700u);
    EXPECT_EQ(table.entry(0).state, PageState::Resident);
    EXPECT_TRUE(table.entry(0).dirty);

    table.beginEvict(0);
    EXPECT_EQ(table.usedBytes(), 700u); // Charged until the drain.
    EXPECT_EQ(table.evictingBytes(), 400u);
    EXPECT_EQ(table.evictionsInFlight(), 1);
    table.finishEvict(0);
    EXPECT_EQ(table.usedBytes(), 300u);
    EXPECT_FALSE(table.entry(0).dirty);
    EXPECT_EQ(table.entry(0).state, PageState::NotResident);

    table.beginFill(0);
    EXPECT_EQ(table.usedBytes(), 700u);
    EXPECT_EQ(table.fillsInFlight(), 1);
    table.finishFill(0, 30);
    EXPECT_EQ(table.entry(0).state, PageState::Resident);
    EXPECT_EQ(table.entry(0).lastTouch, 30u);

    // A refilled group is clean: it can discard for free.
    table.discard(0);
    EXPECT_EQ(table.usedBytes(), 300u);

    table.release(1);
    EXPECT_EQ(table.usedBytes(), 0u);
    EXPECT_EQ(table.entry(1).state, PageState::Invalid);
    EXPECT_EQ(table.peakUsedBytes(), 700u);

    table.resetIteration();
    EXPECT_EQ(table.peakUsedBytes(), 0u);
    EXPECT_EQ(table.entry(0).state, PageState::Invalid);
}

TEST(PageTable, InvalidTransitionsPanic)
{
    LogConfig::throwOnError = true;
    PageTable table(1000, true);
    table.addEntry(0, 100, 0);
    EXPECT_THROW(table.beginEvict(0), PanicError);  // Not resident.
    EXPECT_THROW(table.beginFill(0), PanicError);   // Not evicted.
    table.produce(0, 1);
    EXPECT_THROW(table.produce(0, 2), PanicError);  // Double produce.
    EXPECT_THROW(table.addEntry(0, 1, 0), PanicError);
    LogConfig::throwOnError = false;
}

// ---------------------------------------------------- eviction policies

PageTable
makeTableWithThreeResidents()
{
    PageTable table(1u << 30, true);
    table.addEntry(0, 100, 2); // Oldest trigger, middle touch.
    table.addEntry(1, 100, 8); // Newest trigger, oldest touch.
    table.addEntry(2, 100, 5);
    table.produce(0, 20);
    table.produce(1, 10);
    table.produce(2, 30);
    return table;
}

TEST(EvictionPolicy, LruPicksOldestTouch)
{
    const PageTable table = makeTableWithThreeResidents();
    LruEviction lru;
    EXPECT_EQ(lru.chooseVictim(table, 100), 1);
}

TEST(EvictionPolicy, LruSkipsPinnedAndNonResident)
{
    PageTable table = makeTableWithThreeResidents();
    table.entry(1).pinned = true;
    table.beginEvict(0);
    LruEviction lru;
    EXPECT_EQ(lru.chooseVictim(table, 100), 2);
    table.entry(2).pinned = true;
    EXPECT_EQ(lru.chooseVictim(table, 100), invalidLayerId);
}

TEST(EvictionPolicy, LastForwardUsePrefersRetiredTriggers)
{
    const PageTable table = makeTableWithThreeResidents();
    LastForwardUseEviction lfu;
    // Frontier 6: layers 0 (trigger 2) and 2 (trigger 5) are past
    // their last forward use; 0 is the older trigger.
    EXPECT_EQ(lfu.chooseVictim(table, 6), 0);
    // Frontier 0: no trigger retired yet; falls back to LRU.
    EXPECT_EQ(lfu.chooseVictim(table, 0), 1);
}

// ------------------------------------------------- string round trips

TEST(PagingConfig, PolicyTokensRoundTrip)
{
    for (PrefetchPolicyKind kind : {PrefetchPolicyKind::StaticPlan,
                                    PrefetchPolicyKind::OnDemand,
                                    PrefetchPolicyKind::History})
        EXPECT_EQ(parsePrefetchPolicy(prefetchPolicyToken(kind)), kind);
    for (EvictionPolicyKind kind : {EvictionPolicyKind::Lru,
                                    EvictionPolicyKind::LastForwardUse})
        EXPECT_EQ(parseEvictionPolicy(evictionPolicyToken(kind)), kind);
    LogConfig::throwOnError = true;
    EXPECT_THROW(parsePrefetchPolicy("bogus"), FatalError);
    EXPECT_THROW(parseEvictionPolicy("bogus"), FatalError);
    LogConfig::throwOnError = false;
}

TEST(PagingConfig, RejectsNonPositiveLookahead)
{
    // A zero window silently produced a no-op prefetcher; it is a
    // configuration error like the other capacity knobs.
    LogConfig::throwOnError = true;
    for (const char *value : {"0", "-3"}) {
        OptionParser opts("t", "test");
        Scenario::addOptions(opts);
        const char *argv[] = {"t", "--prefetch-lookahead", value};
        std::ostringstream err;
        ASSERT_TRUE(opts.parse(3, argv, err));
        EXPECT_THROW(Scenario::fromOptions(opts), FatalError);
    }
    LogConfig::throwOnError = false;
}

TEST(PagingConfig, ScenarioPlumbsPagingOptions)
{
    OptionParser opts("t", "test");
    Scenario::addOptions(opts);
    const char *argv[] = {"t",
                          "--prefetch-policy", "history",
                          "--eviction-policy", "lru",
                          "--prefetch-lookahead", "4",
                          "--hbm-capacity", "3"};
    std::ostringstream err;
    ASSERT_TRUE(opts.parse(9, argv, err));
    const Scenario sc = Scenario::fromOptions(opts);
    EXPECT_EQ(sc.base.paging.prefetch, PrefetchPolicyKind::History);
    EXPECT_EQ(sc.base.paging.eviction, EvictionPolicyKind::Lru);
    EXPECT_EQ(sc.base.paging.lookahead, 4u);
    EXPECT_EQ(sc.base.device.memCapacity, 3 * kGiB);
}

// ------------------------------------------------- end-to-end policies

IterationResult
runPolicy(PrefetchPolicyKind policy, std::uint64_t hbm_bytes,
          int iterations = 1,
          EvictionPolicyKind eviction =
              EvictionPolicyKind::LastForwardUse)
{
    Simulator sim;
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = "VGG-E";
    sc.globalBatch = 256;
    sc.iterations = iterations;
    sc.base.paging.prefetch = policy;
    sc.base.paging.eviction = eviction;
    sc.base.device.memCapacity = hbm_bytes;
    return sim.run(sc);
}

TEST(Paging, StaticPlanIsCapacityInsensitive)
{
    const IterationResult small =
        runPolicy(PrefetchPolicyKind::StaticPlan, 3 * kGiB);
    const IterationResult large =
        runPolicy(PrefetchPolicyKind::StaticPlan, 16 * kGiB);
    EXPECT_EQ(small.makespan, large.makespan);
    EXPECT_DOUBLE_EQ(small.offloadBytesPerDevice,
                     large.offloadBytesPerDevice);
    // Every stash migrates out and back exactly once.
    EXPECT_EQ(small.paging.fills, small.paging.writebacks);
    EXPECT_GT(small.paging.fills, 0u);
    EXPECT_EQ(small.paging.earlyEvictions, 0u);
}

TEST(Paging, OnDemandMovesNothingWithAmpleHbm)
{
    const IterationResult r =
        runPolicy(PrefetchPolicyKind::OnDemand, 16 * kGiB);
    EXPECT_DOUBLE_EQ(r.breakdown.vmemSec, 0.0);
    EXPECT_DOUBLE_EQ(r.offloadBytesPerDevice, 0.0);
    EXPECT_EQ(r.paging.demandMisses, 0u);
    EXPECT_GT(r.paging.demandHits, 0u);
    EXPECT_DOUBLE_EQ(r.paging.hitRate(), 1.0);
}

TEST(Paging, OnDemandFaultsUnderPressure)
{
    const IterationResult r =
        runPolicy(PrefetchPolicyKind::OnDemand, 3 * kGiB);
    EXPECT_GT(r.paging.demandMisses, 0u);
    EXPECT_EQ(r.paging.demandFills, r.paging.fills);
    EXPECT_GT(r.paging.writebacks, 0u);
    EXPECT_GT(r.paging.stallSec, 0.0);
    EXPECT_GT(r.breakdown.vmemSec, 0.0);
    EXPECT_LT(r.paging.hitRate(), 1.0);
    // Fault stalls lengthen the iteration past the ample-HBM case.
    const IterationResult ample =
        runPolicy(PrefetchPolicyKind::OnDemand, 16 * kGiB);
    EXPECT_GT(r.makespan, ample.makespan);
    // Hits + misses covers every stash read, which is policy
    // independent.
    const IterationResult plan =
        runPolicy(PrefetchPolicyKind::StaticPlan, 3 * kGiB);
    EXPECT_EQ(r.paging.demandHits + r.paging.demandMisses,
              plan.paging.demandHits + plan.paging.demandMisses);
}

TEST(Paging, OnDemandMovesFewerBytesThanStaticPlan)
{
    const IterationResult demand =
        runPolicy(PrefetchPolicyKind::OnDemand, 3 * kGiB);
    const IterationResult plan =
        runPolicy(PrefetchPolicyKind::StaticPlan, 3 * kGiB);
    EXPECT_LT(demand.offloadBytesPerDevice,
              plan.offloadBytesPerDevice);
    EXPECT_LT(demand.paging.bytesFilled, plan.paging.bytesFilled);
}

TEST(Paging, HistoryWarmsUpToFullHitRate)
{
    // Iteration 1 records (and faults like on-demand); iteration 2
    // prefetches ahead of the recorded sequence.
    const IterationResult cold =
        runPolicy(PrefetchPolicyKind::History, 3 * kGiB, 1);
    const IterationResult warm =
        runPolicy(PrefetchPolicyKind::History, 3 * kGiB, 2);
    EXPECT_GT(cold.paging.demandMisses, 0u);
    EXPECT_GT(cold.paging.stallSec, 0.0);
    EXPECT_LT(warm.paging.demandMisses, cold.paging.demandMisses);
    EXPECT_GT(warm.paging.hitRate(), cold.paging.hitRate());
    // Steady state still pages the same groups, just earlier.
    EXPECT_EQ(warm.paging.writebacks, cold.paging.writebacks);
    EXPECT_LE(warm.makespan, cold.makespan);
}

TEST(Paging, HistoryCursorWrapsOnEarlierReaccess)
{
    // Regression: the steady-state cursor scan never wrapped, so a
    // group re-accessed at a position before the cursor (a re-fault
    // after eviction, or a stash read twice per iteration) left the
    // cursor stale — prefetches then issued from the wrong position or
    // stopped once the cursor ran off the end of the sequence.
    const Network net = buildBenchmark("VGG-E");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    cfg.paging.prefetch = PrefetchPolicyKind::History;
    cfg.device.memCapacity = 3 * kGiB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            256);
    session.run(); // Iteration 1 records the access sequence.

    DevicePager &pager = session.pager(0);
    ASSERT_EQ(pager.prefetchPolicy().kind(),
              PrefetchPolicyKind::History);
    auto &hist =
        static_cast<HistoryPrefetcher &>(pager.prefetchPolicy());
    ASSERT_GE(hist.history().size(), 3u);
    const std::vector<LayerId> recorded = hist.history();

    pager.beginIteration(nullptr); // Steady state.
    EXPECT_FALSE(hist.recording());
    EXPECT_EQ(hist.cursor(), 0u);

    // Normal progress moves the cursor forward...
    hist.accessed(pager, recorded[2]);
    EXPECT_EQ(hist.cursor(), 3u);
    // ...and a fault on an earlier position must rewind it (the old
    // scan left it at 3, prefetching from the wrong place).
    hist.accessed(pager, recorded[0]);
    EXPECT_EQ(hist.cursor(), 1u);
    // Prefetching resumes in sequence order from the re-sync point.
    hist.accessed(pager, recorded[1]);
    EXPECT_EQ(hist.cursor(), 2u);
}

TEST(Paging, HistoryRecordingKeyedOffEmptyHistory)
{
    const Network net = buildBenchmark("VGG-E");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    cfg.paging.prefetch = PrefetchPolicyKind::History;
    cfg.device.memCapacity = 3 * kGiB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            256);
    session.run();
    DevicePager &pager = session.pager(0);

    // A policy whose warmup iterations produced no accesses keeps
    // recording instead of latching off an iteration counter.
    HistoryPrefetcher fresh;
    fresh.beginIteration(pager);
    EXPECT_TRUE(fresh.recording());
    fresh.beginIteration(pager);
    EXPECT_TRUE(fresh.recording()); // Still empty, still recording.
    fresh.accessed(pager, 0);
    EXPECT_EQ(fresh.history().size(), 1u);
    fresh.beginIteration(pager);
    EXPECT_FALSE(fresh.recording()); // Sequence exists; steady state.
}

TEST(Paging, HistorySteadyStateIsStable)
{
    const IterationResult two =
        runPolicy(PrefetchPolicyKind::History, 3 * kGiB, 2);
    const IterationResult three =
        runPolicy(PrefetchPolicyKind::History, 3 * kGiB, 3);
    EXPECT_EQ(two.makespan, three.makespan);
    EXPECT_EQ(two.paging.demandMisses, three.paging.demandMisses);
}

TEST(Paging, EvictionPoliciesProduceConsistentRuns)
{
    for (EvictionPolicyKind eviction :
         {EvictionPolicyKind::Lru, EvictionPolicyKind::LastForwardUse}) {
        const IterationResult r = runPolicy(
            PrefetchPolicyKind::OnDemand, 3 * kGiB, 1, eviction);
        EXPECT_GT(r.makespan, 0u);
        EXPECT_EQ(r.paging.demandFills, r.paging.fills);
        // Conservation: every fill refetches an evicted group.
        EXPECT_LE(r.paging.fills,
                  r.paging.writebacks + r.paging.cleanDrops);
    }
}

TEST(Paging, TooSmallHbmFailsWithDiagnostic)
{
    LogConfig::throwOnError = true;
    EXPECT_THROW(runPolicy(PrefetchPolicyKind::OnDemand, 2 * kGiB),
                 FatalError);
    LogConfig::throwOnError = false;
}

TEST(Paging, DeterministicAcrossSessions)
{
    const IterationResult a =
        runPolicy(PrefetchPolicyKind::OnDemand, 3 * kGiB);
    const IterationResult b =
        runPolicy(PrefetchPolicyKind::OnDemand, 3 * kGiB);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.paging.demandMisses, b.paging.demandMisses);
    EXPECT_DOUBLE_EQ(a.paging.bytesFilled, b.paging.bytesFilled);
}

TEST(Paging, SessionExposesPagers)
{
    const Network net = buildBenchmark("AlexNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            64);
    session.run();
    DevicePager &pager = session.pager(0);
    EXPECT_EQ(pager.config().prefetch, PrefetchPolicyKind::StaticPlan);
    EXPECT_GT(pager.pageTable().entries().size(), 0u);
    std::ostringstream os;
    session.dumpPagingStats(os);
    EXPECT_NE(os.str().find("dev0.pager.demand_hits"),
              std::string::npos);
    EXPECT_NE(os.str().find("dev7.pager.hit_rate"), std::string::npos);
}

} // anonymous namespace
} // namespace mcdla
