/**
 * @file
 * Unit tests for the DNN model library: shapes, layer factories, the
 * network DAG, and the eight Table III benchmark builders.
 */

#include <gtest/gtest.h>

#include "dnn/builders.hh"
#include "dnn/layer.hh"
#include "dnn/network.hh"
#include "sim/logging.hh"
#include "workloads/benchmarks.hh"

namespace mcdla
{
namespace
{

class ThrowingErrors : public ::testing::Test
{
  protected:
    void SetUp() override { LogConfig::throwOnError = true; }
    void TearDown() override { LogConfig::throwOnError = false; }
};

// --------------------------------------------------------------- tensor

TEST(TensorShape, ElementAndByteCounts)
{
    const TensorShape s = TensorShape::chw(64, 56, 56);
    EXPECT_EQ(s.elems(), 64 * 56 * 56);
    EXPECT_EQ(s.bytes(), static_cast<std::uint64_t>(64 * 56 * 56) * 4);
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_EQ(s.str(), "64x56x56");
}

TEST(TensorShape, VectorShape)
{
    const TensorShape v = TensorShape::vec(4096);
    EXPECT_EQ(v.elems(), 4096);
    EXPECT_EQ(v.rank(), 1u);
}

TEST(TensorShape, Equality)
{
    EXPECT_EQ(TensorShape::chw(3, 4, 5), TensorShape::chw(3, 4, 5));
    EXPECT_NE(TensorShape::chw(3, 4, 5), TensorShape::chw(3, 5, 4));
}

TEST(TensorShape, EmptyShapeHasNoElements)
{
    EXPECT_EQ(TensorShape().elems(), 0);
    EXPECT_EQ(TensorShape().str(), "scalar");
}

// --------------------------------------------------------------- layers

TEST(Layer, ConvOutputGeometry)
{
    // AlexNet conv1: 227x227x3, 96 filters 11x11 stride 4 -> 55x55.
    const Layer conv = Layer::conv2d("c", TensorShape::chw(3, 227, 227),
                                     96, 11, 4, 0);
    EXPECT_EQ(conv.outShape(), TensorShape::chw(96, 55, 55));
    ASSERT_EQ(conv.gemms().size(), 1u);
    EXPECT_EQ(conv.gemms()[0].m, 96);
    EXPECT_EQ(conv.gemms()[0].k, 3 * 11 * 11);
    EXPECT_EQ(conv.gemms()[0].nPerSample, 55 * 55);
    EXPECT_EQ(conv.paramCount(), 96 * 363 + 96);
    EXPECT_TRUE(conv.countsTowardDepth());
    EXPECT_EQ(conv.costClass(), CostClass::Heavy);
}

TEST(Layer, GroupedConvDividesReduction)
{
    const Layer conv = Layer::conv2d("c", TensorShape::chw(96, 27, 27),
                                     256, 5, 1, 2, 2);
    EXPECT_EQ(conv.gemms()[0].k, (96 / 2) * 25);
    EXPECT_EQ(conv.paramCount(), 256 * 48 * 25 + 256);
}

TEST(Layer, ConvMacsScaleWithBatch)
{
    const Layer conv = Layer::conv2d("c", TensorShape::chw(3, 32, 32),
                                     16, 3, 1, 1);
    EXPECT_EQ(conv.fwdMacs(4), 4 * conv.fwdMacs(1));
}

TEST_F(ThrowingErrors, ConvRejectsBadGeometry)
{
    EXPECT_THROW(Layer::conv2d("c", TensorShape::vec(10), 8, 3, 1, 1),
                 FatalError);
    EXPECT_THROW(Layer::conv2d("c", TensorShape::chw(3, 4, 4), 8, 9, 1,
                               0),
                 FatalError);
    EXPECT_THROW(Layer::conv2d("c", TensorShape::chw(3, 8, 8), 8, 3, 1,
                               1, 2),
                 FatalError); // 3 % 2 != 0
}

TEST(Layer, FullyConnectedShapes)
{
    const Layer fc = Layer::fullyConnected("fc", 9216, 4096);
    EXPECT_EQ(fc.paramCount(), 9216 * 4096 + 4096);
    EXPECT_EQ(fc.outShape(), TensorShape::vec(4096));
    EXPECT_EQ(fc.fwdMacs(1), 9216 * 4096);
}

TEST(Layer, PoolGeometryAndClass)
{
    const Layer pool = Layer::pool("p", TensorShape::chw(96, 55, 55), 3,
                                   2);
    EXPECT_EQ(pool.outShape(), TensorShape::chw(96, 27, 27));
    EXPECT_EQ(pool.costClass(), CostClass::Cheap);
    EXPECT_FALSE(pool.hasWeights());
    EXPECT_FALSE(pool.countsTowardDepth());
}

TEST(Layer, GlobalPoolCollapsesSpatial)
{
    const Layer gp = Layer::globalPool("p", TensorShape::chw(512, 7, 7));
    EXPECT_EQ(gp.outShape(), TensorShape::vec(512));
}

TEST(Layer, CheapLayersHaveUnitBackwardFactor)
{
    const TensorShape s = TensorShape::chw(8, 4, 4);
    for (const Layer &l :
         {Layer::activation("a", s), Layer::lrn("l", s),
          Layer::batchNorm("b", s), Layer::dropout("d", s),
          Layer::eltwiseAdd("e", s)}) {
        EXPECT_EQ(l.costClass(), CostClass::Cheap) << l.name();
        EXPECT_DOUBLE_EQ(l.bwdMacFactor(), 1.0) << l.name();
    }
}

TEST(Layer, RnnCellGemms)
{
    const Layer cell = Layer::rnnCell("t0", 1760);
    ASSERT_EQ(cell.gemms().size(), 2u);
    EXPECT_EQ(cell.gemms()[0].m, 1760);
    EXPECT_EQ(cell.paramCount(), 2 * 1760 * 1760 + 1760);
    EXPECT_TRUE(cell.isRecurrent());
}

TEST(Layer, LstmCellGemms)
{
    const Layer cell = Layer::lstmCell("t0", 1024);
    ASSERT_EQ(cell.gemms().size(), 2u);
    EXPECT_EQ(cell.gemms()[0].m, 4 * 1024);
    EXPECT_EQ(cell.paramCount(), 8 * 1024 * 1024 + 4 * 1024);
    // Gates + cell states + tanh(c) + x_t slice.
    EXPECT_EQ(cell.auxStashBytesPerSample(), 8u * 1024 * 4);
}

TEST(Layer, GruCellGemms)
{
    const Layer cell = Layer::gruCell("t0", 1536);
    EXPECT_EQ(cell.gemms()[0].m, 3 * 1536);
    EXPECT_EQ(cell.paramCount(), 6 * 1536 * 1536 + 3 * 1536);
    EXPECT_EQ(cell.auxStashBytesPerSample(), 5u * 1536 * 4);
}

TEST(Layer, WeightTyingFlag)
{
    Layer cell = Layer::lstmCell("t1", 64);
    EXPECT_FALSE(cell.weightsTied());
    EXPECT_EQ(cell.tiedOwner(), invalidLayerId);
    cell.markWeightsTied(7);
    EXPECT_TRUE(cell.weightsTied());
    EXPECT_EQ(cell.tiedOwner(), 7);
    // Tied cells still report their (shared) parameter count.
    EXPECT_GT(cell.paramCount(), 0);
}

TEST(Network, UnrolledRnnCellsNameTheirOwner)
{
    const Network net = builders::buildRnnGemv(5, 64);
    LayerId owner = invalidLayerId;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        const Layer &layer = net.layer(id);
        if (!layer.isRecurrent())
            continue;
        if (!layer.weightsTied())
            owner = id; // t0
        else
            EXPECT_EQ(layer.tiedOwner(), owner);
    }
    EXPECT_NE(owner, invalidLayerId);
}

// -------------------------------------------------------------- network

TEST(Network, ChainTopology)
{
    Network net("tiny");
    const LayerId in = net.addLayer(
        Layer::input("in", TensorShape::chw(3, 8, 8)));
    const LayerId conv = net.addAfter(
        Layer::conv2d("c", TensorShape::chw(3, 8, 8), 4, 3, 1, 1), in);
    const LayerId loss = net.addAfter(Layer::softmaxLoss("l", 4), conv);
    net.validate();
    EXPECT_EQ(net.size(), 3u);
    EXPECT_EQ(net.consumersOf(in), std::vector<LayerId>{conv});
    EXPECT_EQ(net.inputsOf(loss), std::vector<LayerId>{conv});
    EXPECT_EQ(net.topoOrder().size(), 3u);
}

TEST_F(ThrowingErrors, NetworkRejectsForwardReferences)
{
    Network net("bad");
    EXPECT_THROW(net.addLayer(Layer::softmaxLoss("l", 4), {5}),
                 FatalError);
}

TEST_F(ThrowingErrors, ValidateRejectsOrphanLayers)
{
    Network net("orphan");
    net.addLayer(Layer::input("in", TensorShape::chw(3, 8, 8)));
    net.addLayer(Layer::softmaxLoss("l", 4)); // no producer
    EXPECT_THROW(net.validate(), FatalError);
}

TEST_F(ThrowingErrors, ValidateRequiresInput)
{
    Network net("no_input");
    EXPECT_THROW(net.validate(), FatalError);
}

TEST(Network, StashRules)
{
    Network net("stash");
    const LayerId in = net.addLayer(
        Layer::input("in", TensorShape::chw(3, 8, 8)));
    const LayerId conv = net.addAfter(
        Layer::conv2d("c", TensorShape::chw(3, 8, 8), 4, 3, 1, 1), in);
    const LayerId act = net.addAfter(
        Layer::activation("a", net.layer(conv).outShape()), conv);
    net.addAfter(Layer::softmaxLoss("l", 4 * 8 * 8), act);

    // Input feeds a heavy layer: stashed. Conv is heavy: stashed.
    EXPECT_TRUE(net.outputStashedForBackward(in));
    EXPECT_TRUE(net.outputStashedForBackward(conv));
    // Activation feeds only the cheap loss: not stashed.
    EXPECT_FALSE(net.outputStashedForBackward(act));
}

// ------------------------------------------------- benchmark builders

TEST(Builders, AlexNetMatchesPublication)
{
    const Network net = builders::buildAlexNet();
    EXPECT_EQ(net.weightedLayerCount(), 8);
    // Canonical grouped AlexNet: ~60.97M parameters.
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 60.97e6,
                0.05e6);
    // ~0.7 GMACs forward per image.
    EXPECT_NEAR(static_cast<double>(net.fwdMacs(1)), 0.72e9, 0.08e9);
}

TEST(Builders, VggEMatchesPublication)
{
    const Network net = builders::buildVggE();
    EXPECT_EQ(net.weightedLayerCount(), 19);
    // VGG-19: 143.67M parameters.
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 143.67e6,
                0.1e6);
    // ~19.6 GMACs forward per image.
    EXPECT_NEAR(static_cast<double>(net.fwdMacs(1)), 19.6e9, 1.0e9);
}

TEST(Builders, GoogLeNetMatchesPublication)
{
    const Network net = builders::buildGoogLeNet();
    EXPECT_EQ(net.weightedLayerCount(), 58);
    // GoogLeNet: ~7.0M parameters (6.99M canonical).
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 7.0e6, 0.3e6);
    // ~1.58 GMACs forward per image.
    EXPECT_NEAR(static_cast<double>(net.fwdMacs(1)), 1.58e9, 0.25e9);
}

TEST(Builders, ResNet34MatchesPublication)
{
    const Network net = builders::buildResNet34();
    EXPECT_EQ(net.weightedLayerCount(), 34);
    // ResNet-34: 21.8M parameters.
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 21.8e6, 0.5e6);
    // ~3.6 GMACs forward per image.
    EXPECT_NEAR(static_cast<double>(net.fwdMacs(1)), 3.67e9, 0.4e9);
}

TEST(Builders, RnnTimestepsMatchTableIII)
{
    EXPECT_EQ(builders::buildRnnGemv().timesteps(), 50);
    EXPECT_EQ(builders::buildRnnLstm1().timesteps(), 25);
    EXPECT_EQ(builders::buildRnnLstm2().timesteps(), 25);
    EXPECT_EQ(builders::buildRnnGru().timesteps(), 187);
}

TEST(Builders, RnnWeightsAreTiedAcrossTimesteps)
{
    const Network net = builders::buildRnnGemv(10, 128);
    // Total params must count the shared cell weights once (plus the
    // untied classifier).
    const std::int64_t cell = 2 * 128 * 128 + 128;
    const std::int64_t fc = 128 * 128 + 128;
    EXPECT_EQ(net.totalParams(), cell + fc);
}

TEST(Builders, RnnCellChainsThroughHiddenState)
{
    const Network net = builders::buildRnnLstm1(5, 64);
    int cells = 0;
    LayerId prev = invalidLayerId;
    for (LayerId id : net.topoOrder()) {
        if (!net.layer(id).isRecurrent())
            continue;
        ++cells;
        if (prev != invalidLayerId) {
            const auto &ins = net.inputsOf(id);
            EXPECT_NE(std::find(ins.begin(), ins.end(), prev),
                      ins.end());
        }
        prev = id;
    }
    EXPECT_EQ(cells, 5);
}

TEST(Builders, RecurrentInputNotStashedMonolithically)
{
    const Network net = builders::buildRnnGemv(4, 32);
    // Layer 0 is the input sequence; cells stash x_t slices instead.
    EXPECT_FALSE(net.outputStashedForBackward(0));
}

// ------------------------------------ catalog-wide property tests

class BenchmarkProperties
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(BenchmarkProperties, BuildsAndValidates)
{
    const Network net = buildBenchmark(GetParam());
    net.validate();
    EXPECT_GT(net.size(), 2u);
}

TEST_P(BenchmarkProperties, DepthMatchesTableIII)
{
    const BenchmarkInfo &info = benchmarkInfo(GetParam());
    const Network net = info.build();
    if (info.recurrent)
        EXPECT_EQ(net.timesteps(), info.depth);
    else
        EXPECT_EQ(net.weightedLayerCount(), info.depth);
}

TEST_P(BenchmarkProperties, MacsArePositiveAndBatchLinear)
{
    const Network net = buildBenchmark(GetParam());
    const std::int64_t one = net.fwdMacs(1);
    EXPECT_GT(one, 0);
    EXPECT_EQ(net.fwdMacs(8), 8 * one);
}

TEST_P(BenchmarkProperties, StashIsPositiveAndBelowResident)
{
    const Network net = buildBenchmark(GetParam());
    EXPECT_GT(net.stashBytesPerSample(), 0u);
    EXPECT_LE(net.stashBytesPerSample(),
              net.residentFeatureBytesPerSample());
}

TEST_P(BenchmarkProperties, WeightsArePositive)
{
    const Network net = buildBenchmark(GetParam());
    EXPECT_GT(net.totalWeightBytes(), 0u);
}

TEST_P(BenchmarkProperties, TopoOrderRespectsEdges)
{
    const Network net = buildBenchmark(GetParam());
    std::vector<int> position(net.size());
    const auto &topo = net.topoOrder();
    for (std::size_t i = 0; i < topo.size(); ++i)
        position[static_cast<std::size_t>(topo[i])] =
            static_cast<int>(i);
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id)
        for (LayerId in : net.inputsOf(id))
            EXPECT_LT(position[static_cast<std::size_t>(in)],
                      position[static_cast<std::size_t>(id)]);
}

TEST_P(BenchmarkProperties, ConsumerListsMirrorInputs)
{
    const Network net = buildBenchmark(GetParam());
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        for (LayerId in : net.inputsOf(id)) {
            const auto &cons = net.consumersOf(in);
            EXPECT_NE(std::find(cons.begin(), cons.end(), id),
                      cons.end());
        }
    }
}

TEST_P(BenchmarkProperties, SummaryMentionsEveryWeightedLayer)
{
    const Network net = buildBenchmark(GetParam());
    const std::string summary = net.summary();
    EXPECT_NE(summary.find(net.name()), std::string::npos);
    EXPECT_GT(summary.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkProperties,
    ::testing::ValuesIn(benchmarkNames()),
    [](const auto &test_info) {
        std::string name = test_info.param;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // anonymous namespace
} // namespace mcdla
