/**
 * @file
 * Unit tests for the activity-based energy model.
 */

#include <gtest/gtest.h>

#include "system/energy_model.hh"
#include "workloads/benchmarks.hh"

namespace mcdla
{
namespace
{

struct Measured
{
    IterationResult result;
    EnergyReport energy;
};

Measured
runAndMeasure(SystemDesign design, const Network &net,
              std::int64_t batch = 256,
              ParallelMode mode = ParallelMode::DataParallel,
              int pipeline_stages = 0, int microbatches = 1)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = design;
    System system(eq, cfg);
    TrainingSession session(system, net, mode, batch, pipeline_stages,
                            microbatches);
    Measured run;
    run.result = session.run();
    run.energy = estimateEnergy(system, run.result);
    return run;
}

TEST(Energy, ComponentsArePositiveAndConsistent)
{
    const Network net = buildBenchmark("AlexNet");
    const Measured run = runAndMeasure(SystemDesign::McDlaB, net);
    const EnergyReport &e = run.energy;
    EXPECT_GT(e.deviceJoules, 0.0);
    EXPECT_GT(e.memNodeJoules, 0.0);
    EXPECT_GT(e.linkJoules, 0.0);
    EXPECT_NEAR(e.totalJoules(),
                e.deviceJoules + e.memNodeJoules + e.linkJoules
                    + e.hostJoules,
                1e-9);
    EXPECT_GT(e.averageWatts(), 0.0);
    EXPECT_GT(e.perfPerWatt(), 0.0);
}

TEST(Energy, McdlaMovesEnergyFromHostToMemoryNodes)
{
    const Network net = buildBenchmark("AlexNet");
    const Measured dc = runAndMeasure(SystemDesign::DcDla, net);
    const Measured mc = runAndMeasure(SystemDesign::McDlaB, net);
    // DC-DLA has no memory-node draw; MC-DLA has no host traffic term.
    EXPECT_DOUBLE_EQ(dc.energy.memNodeJoules, 0.0);
    EXPECT_GT(mc.energy.memNodeJoules, 0.0);
    EXPECT_GT(dc.energy.hostJoules, mc.energy.hostJoules);
}

TEST(Energy, McdlaWinsPerfPerWattDespiteExtraBoards)
{
    // Section V-C's headline, now with measured activity: the shorter
    // iteration amortizes device idle energy and beats the added
    // memory-node power.
    const Network net = buildBenchmark("GoogLeNet");
    const Measured dc = runAndMeasure(SystemDesign::DcDla, net);
    const Measured mc = runAndMeasure(SystemDesign::McDlaB, net);
    EXPECT_GT(mc.energy.perfPerWatt(), 1.5 * dc.energy.perfPerWatt());
}

TEST(Energy, AveragePowerStaysBelowBoardLimits)
{
    // 8 devices x 300 W + 8 memory-node boards + host: a DGX-class
    // envelope (the paper quotes 3,200 W + up to 31%).
    const Network net = buildBenchmark("VGG-E");
    const Measured mc = runAndMeasure(SystemDesign::McDlaB, net);
    EXPECT_LT(mc.energy.averageWatts(), 4800.0);
    EXPECT_GT(mc.energy.averageWatts(), 400.0);
}

TEST(Energy, IdleDeviceDrawsIdlePower)
{
    // DC-DLA's long PCIe stalls leave devices idle: its average power
    // must be well below the MC-DLA run that keeps devices busy.
    const Network net = buildBenchmark("VGG-E");
    const Measured dc = runAndMeasure(SystemDesign::DcDla, net);
    const Measured mc = runAndMeasure(SystemDesign::McDlaB, net);
    EXPECT_LT(dc.energy.averageWatts(), mc.energy.averageWatts());
}

TEST(Energy, PipelineComponentsArePositiveAndConsistent)
{
    // Per-stage energy accounting under --mode pp: every component of
    // a 4-stage GPipe run integrates to something positive and the
    // total stays the sum of its parts.
    const Network net = buildBenchmark("ResNet");
    const Measured run =
        runAndMeasure(SystemDesign::McDlaB, net, 256,
                      ParallelMode::Pipeline, /*stages=*/4,
                      /*microbatches=*/8);
    const EnergyReport &e = run.energy;
    EXPECT_GT(e.deviceJoules, 0.0);
    EXPECT_GT(e.memNodeJoules, 0.0);
    EXPECT_GT(e.linkJoules, 0.0);
    EXPECT_NEAR(e.totalJoules(),
                e.deviceJoules + e.memNodeJoules + e.linkJoules
                    + e.hostJoules,
                1e-9);
    EXPECT_GT(e.perfPerWatt(), 0.0);
}

TEST(Energy, PipelineIdleStagesDrawIdlePowerOnly)
{
    // A 2-stage pipeline on the 8-device machine leaves six devices
    // idle: total device energy must sit between all-idle and
    // two-busy-six-idle bounds, i.e. the idle stages are billed at
    // idle power, not TDP.
    const Network net = buildBenchmark("ResNet");
    const Measured run =
        runAndMeasure(SystemDesign::McDlaB, net, 256,
                      ParallelMode::Pipeline, /*stages=*/2,
                      /*microbatches=*/4);
    const EnergyConfig cfg;
    const double span = run.energy.iterationSeconds;
    ASSERT_GT(span, 0.0);
    const double all_idle = 8.0 * span * cfg.deviceIdleWatts;
    const double two_busy = span
        * (2.0 * cfg.deviceTdpWatts + 6.0 * cfg.deviceIdleWatts);
    EXPECT_GT(run.energy.deviceJoules, all_idle);
    EXPECT_LE(run.energy.deviceJoules, two_busy * (1.0 + 1e-9));
}

TEST(Energy, PipelineStageImbalanceShowsInDeviceEnergy)
{
    // With one stage per device the per-stage busy times differ (the
    // partition balances cost, not exactly), so device energy must
    // exceed the all-idle floor yet stay below every-device-flat-out;
    // the pipeline's bubble guarantees real slack below the ceiling.
    const Network net = buildBenchmark("GoogLeNet");
    const Measured run =
        runAndMeasure(SystemDesign::McDlaB, net, 256,
                      ParallelMode::Pipeline, /*stages=*/8,
                      /*microbatches=*/8);
    const EnergyConfig cfg;
    const double span = run.energy.iterationSeconds;
    ASSERT_GT(span, 0.0);
    EXPECT_GT(run.energy.deviceJoules,
              8.0 * span * cfg.deviceIdleWatts);
    EXPECT_LT(run.energy.deviceJoules,
              8.0 * span * cfg.deviceTdpWatts);
}

TEST(Energy, ZeroSpanYieldsEmptyReport)
{
    EventQueue eq;
    SystemConfig cfg;
    System system(eq, cfg);
    IterationResult empty;
    const EnergyReport e = estimateEnergy(system, empty);
    EXPECT_DOUBLE_EQ(e.totalJoules(), 0.0);
    EXPECT_DOUBLE_EQ(e.averageWatts(), 0.0);
}

} // anonymous namespace
} // namespace mcdla
