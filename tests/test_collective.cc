/**
 * @file
 * Unit and property tests for ring collectives: DES vs the analytic
 * model, the Figure 9 scaling behaviour (including the paper's ~7%
 * all-reduce overhead at 16 vs 8 ring stages), and contention.
 */

#include <gtest/gtest.h>

#include <memory>

#include "collective/ring_collective.hh"
#include "interconnect/fabric.hh"
#include "sim/logging.hh"

namespace mcdla
{
namespace
{

/** Build a fabric with one uniform unidirectional ring of @p stages. */
std::unique_ptr<Fabric>
uniformRing(EventQueue &eq, int stages, double bw, Tick latency)
{
    auto fab = std::make_unique<Fabric>(eq, "ring" + std::to_string(
        stages));
    RingPath ring;
    for (int i = 0; i < stages; ++i) {
        ring.stages.push_back(RingStage{true, i});
        Channel &ch = fab->makeChannel(
            "hop" + std::to_string(i), bw, latency);
        ring.hops.push_back(Route{{&ch}});
    }
    fab->addRing(std::move(ring));
    return fab;
}

/** Run one collective on a uniform ring and return its latency. */
Tick
measure(CollectiveKind kind, int stages, double bytes,
        double chunk = 4096.0, double bw = 25.0 * kGB,
        Tick latency = 500 * ticksPerNs)
{
    EventQueue eq;
    auto fab = uniformRing(eq, stages, bw, latency);
    CollectiveConfig cfg;
    cfg.chunkBytes = chunk;
    CollectiveEngine engine(eq, "nccl", *fab, cfg);
    Tick done = 0;
    engine.launch(kind, bytes, [&] { done = eq.now(); });
    eq.run();
    EXPECT_GT(done, 0u);
    return done;
}

// ------------------------------------------------------------ basics

TEST(Collective, KindNames)
{
    EXPECT_STREQ(collectiveKindName(CollectiveKind::AllReduce),
                 "all-reduce");
    EXPECT_STREQ(collectiveKindName(CollectiveKind::AllGather),
                 "all-gather");
    EXPECT_STREQ(collectiveKindName(CollectiveKind::ReduceScatter),
                 "reduce-scatter");
    EXPECT_STREQ(collectiveKindName(CollectiveKind::Broadcast),
                 "broadcast");
}

TEST(Collective, ZeroBytesCompletesImmediately)
{
    EventQueue eq;
    auto fab = uniformRing(eq, 8, 25.0 * kGB, 0);
    CollectiveEngine engine(eq, "nccl", *fab);
    bool done = false;
    engine.launch(CollectiveKind::AllReduce, 0.0, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(engine.opsCompleted(), 1u);
}

TEST(Collective, NoRingsStillCompletes)
{
    EventQueue eq;
    Fabric fab(eq, "empty");
    CollectiveEngine engine(eq, "nccl", fab);
    bool done = false;
    engine.launch(CollectiveKind::AllReduce, 1e6, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
}

TEST(Collective, TracksLaunchedBytesAndOps)
{
    EventQueue eq;
    auto fab = uniformRing(eq, 4, 25.0 * kGB, 0);
    CollectiveEngine engine(eq, "nccl", *fab);
    engine.launch(CollectiveKind::AllGather, 1e6, nullptr);
    engine.launch(CollectiveKind::AllReduce, 2e6, nullptr);
    eq.run();
    EXPECT_DOUBLE_EQ(engine.bytesLaunched(), 3e6);
    EXPECT_EQ(engine.opsCompleted(), 2u);
}

// --------------------------------------------- bandwidth-term behaviour

TEST(Collective, AllReduceCostsTwiceAllGather)
{
    const Tick ag = measure(CollectiveKind::AllGather, 8, 8e6, 64e3);
    const Tick ar = measure(CollectiveKind::AllReduce, 8, 8e6, 64e3);
    EXPECT_NEAR(static_cast<double>(ar), 2.0 * static_cast<double>(ag),
                0.15 * static_cast<double>(ar));
}

TEST(Collective, ReduceScatterMatchesAllGather)
{
    const Tick ag = measure(CollectiveKind::AllGather, 8, 8e6, 64e3);
    const Tick rs = measure(CollectiveKind::ReduceScatter, 8, 8e6, 64e3);
    EXPECT_NEAR(static_cast<double>(rs), static_cast<double>(ag),
                0.05 * static_cast<double>(ag));
}

TEST(Collective, LatencyScalesLinearlyWithMessageSize)
{
    const Tick small = measure(CollectiveKind::AllReduce, 8, 4e6, 64e3);
    const Tick large = measure(CollectiveKind::AllReduce, 8, 16e6, 64e3);
    EXPECT_NEAR(static_cast<double>(large),
                4.0 * static_cast<double>(small),
                0.25 * static_cast<double>(large));
}

TEST(Collective, SixteenStageAllReduceCostsSevenPercentMore)
{
    // The paper's Figure 9 annotation: for reasonably large messages,
    // MC-DLA's 16-node rings cost ~7% more than DC-DLA's 8-node rings
    // for all-reduce ((15/16)/(7/8) = 1.071).
    const Tick n8 = measure(CollectiveKind::AllReduce, 8, 8e6);
    const Tick n16 = measure(CollectiveKind::AllReduce, 16, 8e6);
    const double overhead = static_cast<double>(n16)
        / static_cast<double>(n8) - 1.0;
    EXPECT_GT(overhead, 0.04);
    EXPECT_LT(overhead, 0.12);
}

TEST(Collective, BroadcastIsNearlyFlatInRingSize)
{
    // Pipelined broadcast: the payload streams once; extra stages add
    // only per-hop chunk latencies.
    const Tick n2 = measure(CollectiveKind::Broadcast, 2, 8e6);
    const Tick n36 = measure(CollectiveKind::Broadcast, 36, 8e6);
    EXPECT_LT(static_cast<double>(n36), 1.3 * static_cast<double>(n2));
}

TEST(Collective, AllGatherDoublesFromTwoToManyStages)
{
    // Figure 9: all-gather latency normalized to a 2-node ring tends to
    // 2x for large rings ((n-1)/n -> 1 vs 1/2).
    const Tick n2 = measure(CollectiveKind::AllGather, 2, 8e6);
    const Tick n36 = measure(CollectiveKind::AllGather, 36, 8e6);
    const double ratio = static_cast<double>(n36)
        / static_cast<double>(n2);
    EXPECT_GT(ratio, 1.7);
    EXPECT_LT(ratio, 2.4);
}

TEST(Collective, SmallMessagesPayLatencyNotBandwidth)
{
    // With a tiny payload the per-hop latency dominates, so a longer
    // ring is proportionally slower — the left side of Figure 9.
    const Tick n4 = measure(CollectiveKind::AllReduce, 4, 16e3);
    const Tick n32 = measure(CollectiveKind::AllReduce, 32, 16e3);
    EXPECT_GT(static_cast<double>(n32),
              3.0 * static_cast<double>(n4));
}

// ----------------------------------------------- multi-ring behaviour

TEST(Collective, TwoRingsHalveLatency)
{
    EventQueue eq;
    auto fab1 = uniformRing(eq, 8, 25.0 * kGB, 0);
    CollectiveEngine e1(eq, "one", *fab1);
    Tick t1 = 0;
    e1.launch(CollectiveKind::AllReduce, 8e6, [&] { t1 = eq.now(); });
    eq.run();

    EventQueue eq2;
    auto fab2 = std::make_unique<Fabric>(eq2, "two");
    for (int r = 0; r < 2; ++r) {
        RingPath ring;
        for (int i = 0; i < 8; ++i) {
            ring.stages.push_back(RingStage{true, i});
            Channel &ch = fab2->makeChannel(
                "r" + std::to_string(r) + "h" + std::to_string(i),
                25.0 * kGB, 0);
            ring.hops.push_back(Route{{&ch}});
        }
        fab2->addRing(std::move(ring));
    }
    CollectiveEngine e2(eq2, "two", *fab2);
    Tick t2 = 0;
    e2.launch(CollectiveKind::AllReduce, 8e6, [&] { t2 = eq2.now(); });
    eq2.run();

    EXPECT_NEAR(static_cast<double>(t2),
                static_cast<double>(t1) / 2.0,
                static_cast<double>(t1) * 0.1);
}

TEST(Collective, ConcurrentOpsContendOnSharedRing)
{
    EventQueue eq;
    auto fab = uniformRing(eq, 8, 25.0 * kGB, 0);
    CollectiveEngine engine(eq, "nccl", *fab);
    Tick solo = 0;
    engine.launch(CollectiveKind::AllReduce, 8e6,
                  [&] { solo = eq.now(); });
    eq.run();

    EventQueue eq2;
    auto fab2 = uniformRing(eq2, 8, 25.0 * kGB, 0);
    CollectiveEngine engine2(eq2, "nccl", *fab2);
    Tick both = 0;
    int done = 0;
    auto on_done = [&] {
        if (++done == 2)
            both = eq2.now();
    };
    engine2.launch(CollectiveKind::AllReduce, 8e6, on_done);
    engine2.launch(CollectiveKind::AllReduce, 8e6, on_done);
    eq2.run();
    EXPECT_NEAR(static_cast<double>(both),
                2.0 * static_cast<double>(solo),
                static_cast<double>(solo) * 0.15);
}

// ----------------------------------------------- analytic cross-check

class AnalyticAgreement
    : public ::testing::TestWithParam<std::tuple<CollectiveKind, int>>
{};

TEST_P(AnalyticAgreement, DesMatchesClosedForm)
{
    const auto [kind, stages] = GetParam();
    const double bytes = 8e6;
    const double chunk = 64e3;
    const double bw = 25.0 * kGB;
    const Tick latency = 500 * ticksPerNs;
    const Tick des = measure(kind, stages, bytes, chunk, bw, latency);
    const Tick analytic =
        analyticRingLatency(kind, stages, bytes, bw, latency, chunk);
    EXPECT_NEAR(static_cast<double>(des),
                static_cast<double>(analytic),
                0.3 * static_cast<double>(analytic))
        << collectiveKindName(kind) << " stages=" << stages;
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, AnalyticAgreement,
    ::testing::Combine(
        ::testing::Values(CollectiveKind::AllGather,
                          CollectiveKind::AllReduce,
                          CollectiveKind::ReduceScatter,
                          CollectiveKind::Broadcast),
        ::testing::Values(2, 4, 8, 16, 24, 36)),
    [](const auto &test_info) {
        const char *kind = "x";
        switch (std::get<0>(test_info.param)) {
          case CollectiveKind::AllGather: kind = "ag"; break;
          case CollectiveKind::AllReduce: kind = "ar"; break;
          case CollectiveKind::ReduceScatter: kind = "rs"; break;
          case CollectiveKind::Broadcast: kind = "bc"; break;
        }
        return std::string(kind) + "_n"
            + std::to_string(std::get<1>(test_info.param));
    });

TEST(AnalyticModel, DegenerateCases)
{
    EXPECT_EQ(analyticRingLatency(CollectiveKind::AllReduce, 1, 1e6,
                                  25e9, 0, 4096),
              0u);
    EXPECT_EQ(analyticRingLatency(CollectiveKind::AllReduce, 8, 0.0,
                                  25e9, 0, 4096),
              0u);
}

} // anonymous namespace
} // namespace mcdla
