/**
 * @file
 * Unit tests for system composition: per-design fabric/address-space
 * wiring, Table II defaults, capacity exposure, and page policies.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"

namespace mcdla
{
namespace
{

System
makeSystem(EventQueue &eq, SystemDesign design)
{
    SystemConfig cfg;
    cfg.design = design;
    return System(eq, cfg);
}

TEST(SystemDesigns, Names)
{
    EXPECT_STREQ(systemDesignName(SystemDesign::DcDla), "DC-DLA");
    EXPECT_STREQ(systemDesignName(SystemDesign::HcDla), "HC-DLA");
    EXPECT_STREQ(systemDesignName(SystemDesign::McDlaS), "MC-DLA(S)");
    EXPECT_STREQ(systemDesignName(SystemDesign::McDlaL), "MC-DLA(L)");
    EXPECT_STREQ(systemDesignName(SystemDesign::McDlaB), "MC-DLA(B)");
    EXPECT_STREQ(systemDesignName(SystemDesign::DcDlaOracle),
                 "DC-DLA(O)");
}

TEST(SystemDesigns, Predicates)
{
    EXPECT_TRUE(designVirtualizesMemory(SystemDesign::DcDla));
    EXPECT_FALSE(designVirtualizesMemory(SystemDesign::DcDlaOracle));
    EXPECT_TRUE(designUsesHostMemory(SystemDesign::HcDla));
    EXPECT_FALSE(designUsesHostMemory(SystemDesign::McDlaB));
    EXPECT_TRUE(designHasMemoryNodes(SystemDesign::McDlaS));
    EXPECT_FALSE(designHasMemoryNodes(SystemDesign::DcDla));
}

TEST(SystemConfig, PagePolicyByDesign)
{
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    EXPECT_EQ(cfg.pagePolicy(), PagePolicy::BwAware);
    cfg.design = SystemDesign::McDlaL;
    EXPECT_EQ(cfg.pagePolicy(), PagePolicy::Local);
    cfg.design = SystemDesign::DcDla;
    EXPECT_EQ(cfg.pagePolicy(), PagePolicy::Local);
}

TEST(SystemConfig, OffloadPolicyByDesign)
{
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDlaOracle;
    EXPECT_FALSE(cfg.offloadPolicy().virtualizeMemory);
    cfg.design = SystemDesign::DcDla;
    EXPECT_TRUE(cfg.offloadPolicy().virtualizeMemory);
}

TEST(System, ComposesEightDevices)
{
    EventQueue eq;
    System sys = makeSystem(eq, SystemDesign::McDlaB);
    EXPECT_EQ(sys.numDevices(), 8);
    for (int d = 0; d < 8; ++d) {
        EXPECT_EQ(sys.device(d).config().numPes, 1024);
        EXPECT_TRUE(sys.dma(d).hasBackingStore());
    }
    EXPECT_EQ(sys.collectives().ringCount(), 6u);
}

TEST(System, McdlaRingAddressSpaceHalvesNeighborBoards)
{
    EventQueue eq;
    System sys = makeSystem(eq, SystemDesign::McDlaB);
    DeviceAddressSpace &space = sys.addressSpace(0);
    ASSERT_EQ(space.regionCount(), 2u);
    // Each neighbor memory-node board is split between two devices.
    MemoryNodeConfig node;
    EXPECT_EQ(space.region(0).capacity, node.capacity() / 2);
    EXPECT_EQ(space.region(1).capacity, node.capacity() / 2);
}

TEST(System, McdlaStarOwnsWholeBoard)
{
    EventQueue eq;
    System sys = makeSystem(eq, SystemDesign::McDlaS);
    DeviceAddressSpace &space = sys.addressSpace(0);
    ASSERT_EQ(space.regionCount(), 1u);
    MemoryNodeConfig node;
    EXPECT_EQ(space.region(0).capacity, node.capacity());
}

TEST(System, HostDesignsExposeHostCapacity)
{
    EventQueue eq;
    System sys = makeSystem(eq, SystemDesign::DcDla);
    DeviceAddressSpace &space = sys.addressSpace(0);
    ASSERT_EQ(space.regionCount(), 1u);
    EXPECT_EQ(space.region(0).targetIndex, -1);
    EXPECT_EQ(space.region(0).capacity, 768u * kGiB);
}

TEST(System, OracleHasEffectivelyInfiniteLocalMemory)
{
    EventQueue eq;
    System sys = makeSystem(eq, SystemDesign::DcDlaOracle);
    EXPECT_FALSE(sys.hasBackingStore());
    EXPECT_FALSE(sys.dma(0).hasBackingStore());
    EXPECT_GT(sys.addressSpace(0).localCapacity(), 1000 * kTiB);
}

TEST(System, TensOfTerabytesExposed)
{
    // Section V-C: with 128 GB LRDIMM memory-nodes the pool expands by
    // ~10.4 TB system-wide.
    EventQueue eq;
    System sys = makeSystem(eq, SystemDesign::McDlaB);
    const double total =
        static_cast<double>(sys.totalExposedMemory());
    // 8 x 16 GiB local + 8 x 1.25 TiB remote.
    EXPECT_GT(total, 10e12);
    EXPECT_LT(total, 12e12);
}

TEST(System, FabricLinkParametersFollowDeviceConfig)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDla;
    cfg.device.linkBandwidth = 50.0 * kGB; // DGX-2-class links
    System sys(eq, cfg);
    EXPECT_DOUBLE_EQ(sys.config().fabric.linkBandwidth, 50.0 * kGB);
}

TEST(System, ResetStatsClearsChannels)
{
    EventQueue eq;
    System sys = makeSystem(eq, SystemDesign::DcDla);
    sendFlow(sys.fabric().vmemPaths(0)[0].writeRoutes, 1e6, 1e5,
             nullptr);
    eq.run();
    EXPECT_GT(sys.fabric().hostBytes(), 0.0);
    sys.resetStats();
    EXPECT_DOUBLE_EQ(sys.fabric().hostBytes(), 0.0);
}

} // anonymous namespace
} // namespace mcdla
