/**
 * @file
 * Cross-validation of the analytic estimator against the DES: the
 * simulated makespan must land between the perfect-overlap and
 * zero-overlap bounds, and the per-category totals must agree with the
 * simulation's own accounting.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "system/analytic_model.hh"
#include "system/training_session.hh"
#include "workloads/benchmarks.hh"

namespace mcdla
{
namespace
{

struct Case
{
    std::string workload;
    SystemDesign design;
    ParallelMode mode;
};

class AnalyticAgainstDes : public ::testing::TestWithParam<Case>
{};

TEST_P(AnalyticAgainstDes, MakespanFallsBetweenBounds)
{
    const Case &c = GetParam();
    const Network net = buildBenchmark(c.workload);
    SystemConfig cfg;
    cfg.design = c.design;

    const AnalyticEstimate est =
        estimateIteration(cfg, net, c.mode, 256);

    EventQueue eq;
    System system(eq, cfg);
    TrainingSession session(system, net, c.mode, 256);
    const IterationResult r = session.run();

    // The DES includes scheduling/latency effects the bounds ignore;
    // allow a small modelling margin on each side.
    EXPECT_GE(r.iterationSeconds(), est.lowerBoundSec() * 0.90)
        << systemDesignName(c.design);
    EXPECT_LE(r.iterationSeconds(), est.upperBoundSec() * 1.35)
        << systemDesignName(c.design);
}

TEST_P(AnalyticAgainstDes, ComputeTotalsAgree)
{
    const Case &c = GetParam();
    const Network net = buildBenchmark(c.workload);
    SystemConfig cfg;
    cfg.design = c.design;

    const AnalyticEstimate est =
        estimateIteration(cfg, net, c.mode, 256);
    EventQueue eq;
    System system(eq, cfg);
    TrainingSession session(system, net, c.mode, 256);
    const IterationResult r = session.run();

    EXPECT_NEAR(r.breakdown.computeSec, est.computeSec,
                est.computeSec * 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalyticAgainstDes,
    ::testing::Values(
        Case{"AlexNet", SystemDesign::DcDla,
             ParallelMode::DataParallel},
        Case{"AlexNet", SystemDesign::McDlaB,
             ParallelMode::DataParallel},
        Case{"AlexNet", SystemDesign::McDlaB,
             ParallelMode::ModelParallel},
        Case{"GoogLeNet", SystemDesign::HcDla,
             ParallelMode::DataParallel},
        Case{"VGG-E", SystemDesign::DcDla, ParallelMode::DataParallel},
        Case{"VGG-E", SystemDesign::McDlaS,
             ParallelMode::DataParallel},
        Case{"RNN-GEMV", SystemDesign::McDlaL,
             ParallelMode::DataParallel},
        Case{"RNN-LSTM-1", SystemDesign::McDlaB,
             ParallelMode::ModelParallel},
        Case{"RNN-LSTM-2", SystemDesign::DcDlaOracle,
             ParallelMode::DataParallel},
        Case{"RNN-GRU", SystemDesign::DcDla,
             ParallelMode::DataParallel}),
    [](const auto &test_info) {
        std::string name = test_info.param.workload + "_"
            + systemDesignName(test_info.param.design) + "_"
            + (test_info.param.mode == ParallelMode::DataParallel ? "dp"
                                                             : "mp");
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(AnalyticModel, VmemBandwidthPerDesign)
{
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDla;
    EXPECT_NEAR(designVmemBandwidth(cfg), 13.0 * kGB, 0.5 * kGB);
    cfg.design = SystemDesign::HcDla;
    EXPECT_DOUBLE_EQ(designVmemBandwidth(cfg), 75.0 * kGB);
    cfg.design = SystemDesign::McDlaS;
    EXPECT_DOUBLE_EQ(designVmemBandwidth(cfg), 50.0 * kGB);
    cfg.design = SystemDesign::McDlaL;
    EXPECT_DOUBLE_EQ(designVmemBandwidth(cfg), 75.0 * kGB);
    cfg.design = SystemDesign::McDlaB;
    EXPECT_DOUBLE_EQ(designVmemBandwidth(cfg), 150.0 * kGB);
    cfg.design = SystemDesign::DcDlaOracle;
    EXPECT_DOUBLE_EQ(designVmemBandwidth(cfg), 0.0);
}

TEST(AnalyticModel, OracleHasNoVmemTime)
{
    const Network net = buildBenchmark("AlexNet");
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDlaOracle;
    const AnalyticEstimate est = estimateIteration(
        cfg, net, ParallelMode::DataParallel, 512);
    EXPECT_DOUBLE_EQ(est.vmemSec, 0.0);
    EXPECT_GT(est.computeSec, 0.0);
}

TEST(AnalyticModel, CompressionScalesVmem)
{
    const Network net = buildBenchmark("VGG-E");
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDla;
    const AnalyticEstimate plain = estimateIteration(
        cfg, net, ParallelMode::DataParallel, 512);
    cfg.dmaCompressionRatio = 2.6;
    const AnalyticEstimate compressed = estimateIteration(
        cfg, net, ParallelMode::DataParallel, 512);
    EXPECT_NEAR(compressed.vmemSec, plain.vmemSec / 2.6,
                plain.vmemSec * 0.01);
}

TEST(AnalyticModel, BoundsAreOrdered)
{
    const Network net = buildBenchmark("ResNet");
    SystemConfig cfg;
    for (SystemDesign design : kAllDesigns) {
        cfg.design = design;
        const AnalyticEstimate est = estimateIteration(
            cfg, net, ParallelMode::ModelParallel, 512);
        EXPECT_LE(est.lowerBoundSec(), est.upperBoundSec());
        EXPECT_GT(est.computeSec, 0.0);
    }
}

} // anonymous namespace
} // namespace mcdla
