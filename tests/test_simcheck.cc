/**
 * @file
 * SimCheck violation-injection tests: each invariant is broken on
 * purpose and must abort with a diagnostic naming its subsystem.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/pool_allocator.hh"
#include "dnn/network.hh"
#include "interconnect/fabrics.hh"
#include "serving/serving.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/simcheck.hh"
#include "sim/units.hh"
#include "vmem/dma_engine.hh"
#include "vmem/paging/fault_handler.hh"
#include "vmem/paging/page_table.hh"
#include "vmem/runtime.hh"

namespace mcdla
{
namespace
{

/** SimCheck on, panics thrown, both restored on exit. */
class SimCheckTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _wasEnabled = simcheck::enabled();
        simcheck::setEnabled(true);
        LogConfig::throwOnError = true;
    }

    void
    TearDown() override
    {
        LogConfig::throwOnError = false;
        simcheck::setEnabled(_wasEnabled);
    }

    /** The PanicError message @p fn throws ("" plus a test failure
        when it does not throw). */
    template <typename Fn>
    static std::string
    panicMessage(Fn &&fn)
    {
        try {
            fn();
        } catch (const PanicError &e) {
            return e.what();
        }
        ADD_FAILURE() << "expected a PanicError";
        return {};
    }

  private:
    bool _wasEnabled = false;
};

TEST_F(SimCheckTest, PastSchedulingNamesTheEventQueue)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    const std::string msg =
        panicMessage([&] { eq.schedule(50, [] {}, "late"); });
    EXPECT_NE(msg.find("SimCheck[event-queue]"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("late"), std::string::npos) << msg;
}

TEST_F(SimCheckTest, FirstFitDoubleReleaseNamesTheMemoryPool)
{
    FirstFitPoolAllocator pool(1024);
    const auto block = pool.allocate(256);
    ASSERT_TRUE(block.has_value());
    pool.release(*block);
    const std::string msg =
        panicMessage([&] { pool.release(*block); });
    EXPECT_NE(msg.find("SimCheck[memory-pool]"), std::string::npos)
        << msg;
}

TEST_F(SimCheckTest, BuddyOverlappingReleaseNamesTheMemoryPool)
{
    BuddyPoolAllocator pool(1024, /*min_block=*/64);
    const auto a = pool.allocate(128);
    ASSERT_TRUE(a.has_value());
    // A handle overlapping block a but never handed out by the pool:
    // releasing it would create overlapping free blocks.
    PoolBlock forged = *a;
    forged.bytes = 64;
    const std::string msg =
        panicMessage([&] { pool.release(forged); });
    EXPECT_NE(msg.find("SimCheck[memory-pool]"), std::string::npos)
        << msg;
    pool.release(*a);
}

TEST_F(SimCheckTest, DoubleMappedFrameNamesThePageTable)
{
    PageTable table(1 * kGiB, /*enforce=*/true);
    table.addEntry(/*layer=*/0, 256 * kMiB,
                   /*last_forward_use_op=*/0);
    table.produce(0, /*now=*/10);
    // Filling a group that is already resident would map its frames
    // twice.
    const std::string msg = panicMessage([&] { table.beginFill(0); });
    EXPECT_NE(msg.find("SimCheck[page-table]"), std::string::npos)
        << msg;
}

TEST_F(SimCheckTest, LeakedDmaNamesTheFaultHandler)
{
    EventQueue eq;
    auto fabric = buildMcdlaRingFabric(eq, FabricConfig{});
    DeviceAddressSpace space(
        "d0", 16 * kGiB,
        std::vector<RemoteRegion>{RemoteRegion{0, 640 * kGiB},
                                  RemoteRegion{7, 640 * kGiB}});
    DmaEngine dma_engine(eq, "dma0", fabric->vmemPaths(0));
    VmemRuntime rt(space, dma_engine, PagePolicy::BwAware);

    std::map<LayerId, RemotePtr> remote_ptrs;
    remote_ptrs.emplace(0, rt.mallocRemote(64 * kMiB));
    const std::vector<double> wire_bytes{64.0 * kMiB};
    const std::vector<LayerId> group_layer;
    Network net("empty");
    FaultHandler fault(rt, remote_ptrs, wire_bytes, group_layer, net,
                       /*tracker=*/nullptr);

    fault.issueFillDma(0, /*demand=*/true, nullptr);
    ASSERT_FALSE(fault.dmaIdle());
    // The DMA has not drained: declaring the iteration done now
    // leaks it.
    const std::string msg = panicMessage(
        [&] { fault.simcheckExpectQuiescent("end of iteration"); });
    EXPECT_NE(msg.find("SimCheck[fault-handler]"), std::string::npos)
        << msg;
    eq.run();
    fault.simcheckExpectQuiescent("end of iteration"); // drained now
}

TEST_F(SimCheckTest, DroppedRequestNamesServing)
{
    std::vector<RequestOutcome> outcomes(2);
    outcomes[0].request.name = "req0";
    outcomes[0].completed = true;
    outcomes[0].replica = 0;
    outcomes[0].dispatchSec = 0.1;
    outcomes[0].doneSec = 0.2;
    outcomes[1].request.name = "req1";
    // req1 was admitted but neither completed nor shed.
    const std::string msg = panicMessage(
        [&] { simcheckVerifyRequestOutcomes(outcomes); });
    EXPECT_NE(msg.find("SimCheck[serving]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("req1"), std::string::npos) << msg;

    outcomes[1].dropped = true;
    simcheckVerifyRequestOutcomes(outcomes); // consistent now

    outcomes[1].completed = true; // completed AND shed
    const std::string both = panicMessage(
        [&] { simcheckVerifyRequestOutcomes(outcomes); });
    EXPECT_NE(both.find("SimCheck[serving]"), std::string::npos)
        << both;
}

TEST_F(SimCheckTest, ViolationsCountAndDisableRestores)
{
    const std::uint64_t before = simcheck::violationCount();
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), PanicError);
    EXPECT_GT(simcheck::violationCount(), before);

    // With SimCheck off the same schedule is a clamp, not an error.
    simcheck::setEnabled(false);
    bool ran = false;
    eq.schedule(50, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
}

} // anonymous namespace
} // namespace mcdla
