/**
 * @file
 * Integration tests: full training-iteration simulations across
 * designs, workloads, and parallel modes, checking the paper's
 * qualitative results (Section V) as invariants.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hh"
#include "core/simulator.hh"
#include "sim/logging.hh"
#include "system/training_session.hh"
#include "workloads/benchmarks.hh"

namespace mcdla
{
namespace
{

IterationResult
runOnce(SystemDesign design, const Network &net, ParallelMode mode,
        std::int64_t batch)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = design;
    System system(eq, cfg);
    TrainingSession session(system, net, mode, batch);
    return session.run();
}

// --------------------------------------------------------- basic sanity

TEST(Training, IterationCompletesWithPositiveMakespan)
{
    const Network net = buildBenchmark("AlexNet");
    const IterationResult r = runOnce(SystemDesign::McDlaB, net,
                                      ParallelMode::DataParallel, 64);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_GT(r.breakdown.computeSec, 0.0);
    EXPECT_GT(r.eventsExecuted, 0u);
}

TEST(Training, RepeatedIterationsAreDeterministic)
{
    const Network net = buildBenchmark("AlexNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel, 64);
    const IterationResult a = session.run();
    const IterationResult b = session.run();
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.breakdown.vmemSec, b.breakdown.vmemSec);
}

TEST(Training, OracleHasNoVirtualizationActivity)
{
    const Network net = buildBenchmark("AlexNet");
    const IterationResult r = runOnce(SystemDesign::DcDlaOracle, net,
                                      ParallelMode::DataParallel, 64);
    EXPECT_DOUBLE_EQ(r.breakdown.vmemSec, 0.0);
    EXPECT_DOUBLE_EQ(r.offloadBytesPerDevice, 0.0);
    EXPECT_DOUBLE_EQ(r.hostBytes, 0.0);
}

TEST(Training, McdlaGeneratesNoHostTraffic)
{
    // Section V-A: "there are no CPU memory bandwidth consumption
    // whatsoever" under MC-DLA.
    const Network net = buildBenchmark("AlexNet");
    for (SystemDesign d : {SystemDesign::McDlaS, SystemDesign::McDlaL,
                           SystemDesign::McDlaB}) {
        const IterationResult r =
            runOnce(d, net, ParallelMode::DataParallel, 64);
        EXPECT_DOUBLE_EQ(r.hostBytes, 0.0) << systemDesignName(d);
        EXPECT_DOUBLE_EQ(r.hostAvgBwPerSocket, 0.0);
        EXPECT_GT(r.breakdown.vmemSec, 0.0);
    }
}

TEST(Training, HostDesignsMoveOffloadTrafficThroughSockets)
{
    const Network net = buildBenchmark("AlexNet");
    const IterationResult r = runOnce(SystemDesign::DcDla, net,
                                      ParallelMode::DataParallel, 64);
    // Host bytes == offload + prefetch traffic of all 8 devices.
    EXPECT_NEAR(r.hostBytes, r.offloadBytesPerDevice * 8.0,
                r.hostBytes * 0.01);
    EXPECT_GT(r.hostAvgBwPerSocket, 0.0);
    EXPECT_GT(r.hostPeakBwPerSocket, r.hostAvgBwPerSocket * 0.99);
}

TEST(Training, OffloadTrafficMatchesPlan)
{
    const Network net = buildBenchmark("AlexNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            512);
    const IterationResult r = session.run();
    // Offload + prefetch = 2x the planned per-sample stash x batch/8.
    const double expected = 2.0
        * static_cast<double>(session.plan().offloadBytesPerSample())
        * 64.0;
    EXPECT_NEAR(r.offloadBytesPerDevice, expected, expected * 0.01);
}

TEST(Training, ComputeTimeIsDesignInvariant)
{
    const Network net = buildBenchmark("GoogLeNet");
    const IterationResult dc = runOnce(SystemDesign::DcDla, net,
                                       ParallelMode::DataParallel, 128);
    const IterationResult mc = runOnce(SystemDesign::McDlaB, net,
                                       ParallelMode::DataParallel, 128);
    EXPECT_NEAR(dc.breakdown.computeSec, mc.breakdown.computeSec,
                dc.breakdown.computeSec * 0.02);
}

// -------------------------------------------- paper-shape invariants

TEST(Training, DesignOrderingMatchesFigure13)
{
    // DC-DLA slowest, oracle fastest, MC-DLA(B) within; the MC family
    // orders S <= L <= B (up to small noise).
    const Network net = buildBenchmark("VGG-E");
    std::map<SystemDesign, double> t;
    for (SystemDesign d : kAllDesigns)
        t[d] = runOnce(d, net, ParallelMode::DataParallel, 128)
                   .iterationSeconds();

    EXPECT_GT(t[SystemDesign::DcDla], t[SystemDesign::HcDla]);
    EXPECT_GT(t[SystemDesign::DcDla], t[SystemDesign::McDlaS]);
    EXPECT_GE(t[SystemDesign::McDlaS] * 1.02, t[SystemDesign::McDlaL]);
    EXPECT_GE(t[SystemDesign::McDlaL] * 1.02, t[SystemDesign::McDlaB]);
    EXPECT_GE(t[SystemDesign::McDlaB], t[SystemDesign::DcDlaOracle]);
}

TEST(Training, McdlaBReachesMostOfOracle)
{
    // Section V-B: MC-DLA(B) reaches 84-99% of the unbuildable oracle.
    const Network net = buildBenchmark("ResNet");
    const double b = runOnce(SystemDesign::McDlaB, net,
                             ParallelMode::DataParallel, 256)
                         .iterationSeconds();
    const double o = runOnce(SystemDesign::DcDlaOracle, net,
                             ParallelMode::DataParallel, 256)
                         .iterationSeconds();
    EXPECT_GT(o / b, 0.70);
    EXPECT_LE(o / b, 1.001);
}

TEST(Training, VirtualizationDominatesDcdlaForCnns)
{
    // Figure 11(a): memory virtualization is the DC-DLA bottleneck on
    // CNN data-parallel training.
    const Network net = buildBenchmark("VGG-E");
    const IterationResult r = runOnce(SystemDesign::DcDla, net,
                                      ParallelMode::DataParallel, 256);
    EXPECT_GT(r.breakdown.vmemSec, 2.0 * r.breakdown.computeSec);
    EXPECT_GT(r.breakdown.vmemSec, r.breakdown.syncSec);
}

TEST(Training, ModelParallelSyncsMoreThanDataParallel)
{
    const Network net = buildBenchmark("RNN-LSTM-1");
    const IterationResult dp = runOnce(SystemDesign::DcDla, net,
                                       ParallelMode::DataParallel, 512);
    const IterationResult mp = runOnce(SystemDesign::DcDla, net,
                                       ParallelMode::ModelParallel, 512);
    // Twice-per-timestep blocking aggregation vs one dW all-reduce.
    EXPECT_GT(mp.breakdown.syncSec, 1.5 * dp.breakdown.syncSec);
    EXPECT_GT(mp.syncBytes, dp.syncBytes);
}

TEST(Training, HcdlaTradesVirtualizationForSync)
{
    // Section V-A: HC-DLA cuts virtualization latency but roughly
    // doubles synchronization time vs DC-DLA.
    const Network net = buildBenchmark("AlexNet");
    const IterationResult dc = runOnce(SystemDesign::DcDla, net,
                                       ParallelMode::DataParallel, 512);
    const IterationResult hc = runOnce(SystemDesign::HcDla, net,
                                       ParallelMode::DataParallel, 512);
    EXPECT_LT(hc.breakdown.vmemSec, 0.4 * dc.breakdown.vmemSec);
    EXPECT_GT(hc.breakdown.syncSec, 1.5 * dc.breakdown.syncSec);
}

TEST(Training, HcdlaConsumesLargeFractionOfSocketBandwidth)
{
    // Figure 12 / Section II-C: HC-DLA can consume most of the
    // provisioned per-socket bandwidth (300 GB/s).
    const Network net = buildBenchmark("VGG-E");
    const IterationResult r = runOnce(SystemDesign::HcDla, net,
                                      ParallelMode::DataParallel, 256);
    EXPECT_GT(r.hostPeakBwPerSocket, 0.6 * 300.0 * kGB);
    EXPECT_LE(r.hostPeakBwPerSocket, 1.05 * 300.0 * kGB);
}

TEST(Training, BatchSizeScalesIterationTime)
{
    const Network net = buildBenchmark("ResNet");
    const double t128 = runOnce(SystemDesign::McDlaB, net,
                                ParallelMode::DataParallel, 128)
                            .iterationSeconds();
    const double t512 = runOnce(SystemDesign::McDlaB, net,
                                ParallelMode::DataParallel, 512)
                            .iterationSeconds();
    EXPECT_GT(t512, 2.5 * t128);
    EXPECT_LT(t512, 5.0 * t128);
}

TEST(Training, CapacityWallTriggersWithoutVirtualization)
{
    // A finite-memory design without virtualization cannot hold the
    // VGG-E working set at batch 512 — Section II-B's capacity wall.
    LogConfig::throwOnError = true;
    const Network net = buildBenchmark("VGG-E");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDla;
    cfg.recomputeCheapLayers = true;
    System system(eq, cfg);
    // Keeping everything resident at the Fig 2 setting (one device,
    // batch 512) far exceeds a 16 GiB card.
    OffloadPolicy policy;
    policy.virtualizeMemory = false;
    OffloadPlan plan(net, policy);
    const std::uint64_t resident =
        plan.residentBytesPerSample() * 512;
    EXPECT_GT(resident + net.totalWeightBytes(),
              cfg.device.memCapacity);
    LogConfig::throwOnError = false;
}

TEST(Training, FootprintFitsWithVirtualization)
{
    const Network net = buildBenchmark("VGG-E");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            512);
    EXPECT_LE(session.footprintBytesPerDevice(),
              cfg.device.memCapacity);
}

TEST(Training, SingleDeviceRunsWithoutCollectives)
{
    const Network net = buildBenchmark("AlexNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDla;
    cfg.fabric.numDevices = 1;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            512);
    const IterationResult r = session.run();
    EXPECT_GT(r.makespan, 0u);
    EXPECT_DOUBLE_EQ(r.breakdown.syncSec, 0.0);
    EXPECT_DOUBLE_EQ(r.syncBytes, 0.0);
}

// ---------------------------------------- catalog-wide completion sweep

class TrainingSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, SystemDesign, ParallelMode>>
{};

TEST_P(TrainingSweep, CompletesWithConsistentBreakdown)
{
    const auto [workload, design, mode] = GetParam();
    const Network net = buildBenchmark(workload);
    const IterationResult r = runOnce(design, net, mode, 64);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_GT(r.breakdown.computeSec, 0.0);
    // Makespan is bounded below by compute and never smaller than any
    // single category can explain away.
    EXPECT_GE(r.iterationSeconds() * 1.0001, r.breakdown.computeSec);
    if (designVirtualizesMemory(design)) {
        EXPECT_GT(r.breakdown.vmemSec, 0.0);
    } else {
        EXPECT_DOUBLE_EQ(r.breakdown.vmemSec, 0.0);
    }
    if (!designUsesHostMemory(design)) {
        EXPECT_DOUBLE_EQ(r.hostBytes, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, TrainingSweep,
    ::testing::Combine(
        ::testing::Values("AlexNet", "GoogLeNet", "RNN-GEMV",
                          "RNN-LSTM-2"),
        ::testing::ValuesIn(std::vector<SystemDesign>(
            std::begin(kAllDesigns), std::end(kAllDesigns))),
        ::testing::Values(ParallelMode::DataParallel,
                          ParallelMode::ModelParallel)),
    [](const auto &test_info) {
        std::string name = std::get<0>(test_info.param) + "_"
            + systemDesignName(std::get<1>(test_info.param)) + "_"
            + (std::get<2>(test_info.param) == ParallelMode::DataParallel
                   ? "dp"
                   : "mp");
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

// ------------------------------------------------------- experiment api

TEST(Experiment, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
}

TEST(Experiment, GeometricMean)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(Experiment, TablePrinterAlignsColumns)
{
    TablePrinter table({"A", "LongHeader"});
    table.addRow({"x", "1"});
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("LongHeader"), std::string::npos);
    EXPECT_NE(os.str().find("---"), std::string::npos);
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
}

TEST(Experiment, SimulatorRunsFromScenario)
{
    Simulator sim;
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = "AlexNet";
    sc.globalBatch = 64;
    const IterationResult r = sim.run(sc);
    EXPECT_GT(r.makespan, 0u);
}

} // anonymous namespace
} // namespace mcdla
