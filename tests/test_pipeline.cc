/**
 * @file
 * Unit tests for pipeline parallelism: the stage partitioner's balance
 * and contiguity invariants, the strategy's pipeline queries, the
 * Scenario round-trips of the new tokens/knobs, and end-to-end DES
 * runs validated against the pipeline-aware analytic bounds for all
 * three parallel modes.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/mcdla.hh"
#include "core/options.hh"
#include "sim/logging.hh"

namespace mcdla
{
namespace
{

std::vector<double>
uniformCosts(const Network &net, double value = 1.0)
{
    return std::vector<double>(net.size(), value);
}

std::vector<double>
rooflineCosts(const Network &net)
{
    const ComputeModel model(DeviceConfig{});
    LayerScaling scaling;
    scaling.batch = 32;
    std::vector<double> cost;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        const LayerTiming t = model.layerTiming(net.layer(id), scaling);
        cost.push_back(static_cast<double>(t.forward + t.backward));
    }
    return cost;
}

// ----------------------------------------------------- stage partition

TEST(PipelinePartition, StagesAreContiguousAndCoverTheNetwork)
{
    const Network net = builders::buildResNet34();
    const std::vector<double> cost = rooflineCosts(net);
    const PipelinePartition part(net, cost, 4);

    ASSERT_EQ(part.numStages(), 4);
    std::size_t covered = 0;
    for (int s = 0; s < part.numStages(); ++s) {
        EXPECT_FALSE(part.stage(s).layers.empty());
        covered += part.stage(s).layers.size();
        for (LayerId id : part.stage(s).layers)
            EXPECT_EQ(part.stageOf(id), s);
    }
    EXPECT_EQ(covered, net.size());

    // Stage assignment must be monotone along the topological order.
    int prev = 0;
    for (LayerId id : net.topoOrder()) {
        EXPECT_GE(part.stageOf(id), prev);
        prev = part.stageOf(id);
    }
}

TEST(PipelinePartition, BalanceIsWithinTheGreedyBound)
{
    // The optimal contiguous min-max partition never exceeds the ideal
    // share by more than the largest single layer.
    for (const char *workload : {"ResNet", "VGG-E", "RNN-GEMV"}) {
        const Network net = buildBenchmark(workload);
        const std::vector<double> cost = rooflineCosts(net);
        const double max_layer =
            *std::max_element(cost.begin(), cost.end());
        for (int stages : {2, 4, 8}) {
            const PipelinePartition part(net, cost, stages);
            EXPECT_LE(part.maxStageCost(),
                      part.totalCost() / stages + max_layer + 1e-9)
                << workload << " @" << stages;
            EXPECT_GE(part.maxStageCost(),
                      part.totalCost() / stages - 1e-9);
            EXPECT_GE(part.imbalance(), 1.0 - 1e-12);
        }
    }
}

TEST(PipelinePartition, CostAccountingIsConsistent)
{
    const Network net = builders::buildAlexNet();
    const std::vector<double> cost = uniformCosts(net);
    const PipelinePartition part(net, cost, 3);
    double total = 0.0;
    double max_stage = 0.0;
    for (int s = 0; s < part.numStages(); ++s) {
        EXPECT_NEAR(part.stage(s).cost,
                    static_cast<double>(part.stage(s).layers.size()),
                    1e-9);
        total += part.stage(s).cost;
        max_stage = std::max(max_stage, part.stage(s).cost);
    }
    EXPECT_NEAR(total, part.totalCost(), 1e-9);
    EXPECT_NEAR(max_stage, part.maxStageCost(), 1e-9);
}

TEST(PipelinePartition, SingleStageTakesEverything)
{
    const Network net = builders::buildAlexNet();
    const PipelinePartition part(net, uniformCosts(net), 1);
    EXPECT_EQ(part.numStages(), 1);
    EXPECT_EQ(part.stage(0).layers.size(), net.size());
    EXPECT_NEAR(part.imbalance(), 1.0, 1e-9);
}

TEST(PipelinePartition, RejectsDegenerateArguments)
{
    LogConfig::throwOnError = true;
    const Network net = builders::buildAlexNet();
    EXPECT_THROW(PipelinePartition(net, uniformCosts(net), 0),
                 FatalError);
    EXPECT_THROW(PipelinePartition(
                     net, uniformCosts(net),
                     static_cast<int>(net.size()) + 1),
                 FatalError);
    EXPECT_THROW(PipelinePartition(net, {1.0, 2.0}, 2), FatalError);
    LogConfig::throwOnError = false;
}

// ------------------------------------------------------ strategy layer

ParallelStrategy
makePipelineStrategy(const Network &net, int stages, int microbatches,
                     std::int64_t batch = 512)
{
    PipelineConfig pipe;
    pipe.stages = stages;
    pipe.microbatches = microbatches;
    return ParallelStrategy(net, ParallelMode::Pipeline, 8, batch,
                            pipe);
}

TEST(PipelineStrategy, MicrobatchScalingAndNoCollectives)
{
    const Network net = builders::buildResNet34();
    const ParallelStrategy pp = makePipelineStrategy(net, 4, 8);
    EXPECT_TRUE(pp.isPipeline());
    EXPECT_EQ(pp.pipelineStages(), 4);
    EXPECT_EQ(pp.microbatches(), 8);
    EXPECT_EQ(pp.microbatchSize(), 64);
    EXPECT_EQ(pp.perDeviceBatch(), 64);
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        EXPECT_FALSE(pp.forwardSync(id).has_value());
        EXPECT_FALSE(pp.backwardSync(id).has_value());
        EXPECT_EQ(pp.scaling(net.layer(id)).modelShards, 1);
        EXPECT_EQ(pp.scaling(net.layer(id)).batch, 64);
    }
}

TEST(PipelineStrategy, BoundaryBytesMatchThePartitionCut)
{
    const Network net = builders::buildResNet34();
    const ParallelStrategy pp = makePipelineStrategy(net, 4, 8);
    for (int boundary = 0; boundary < 3; ++boundary) {
        // Distinct producers on or before the boundary with a consumer
        // beyond it, scaled by the microbatch size.
        double expect = 0.0;
        for (LayerId id = 0; id < static_cast<LayerId>(net.size());
             ++id) {
            if (pp.stageOfLayer(id) > boundary)
                continue;
            bool crosses = false;
            for (LayerId c : net.consumersOf(id))
                if (pp.stageOfLayer(c) > boundary)
                    crosses = true;
            if (crosses)
                expect += static_cast<double>(
                    net.layer(id).outBytesPerSample());
        }
        expect *= static_cast<double>(pp.microbatchSize());
        EXPECT_GT(expect, 0.0);
        EXPECT_DOUBLE_EQ(pp.boundaryBytesPerMicrobatch(boundary),
                         expect);
    }
}

TEST(PipelineStrategy, StageWeightsCoverTheModelExactlyWithoutTies)
{
    const Network net = builders::buildAlexNet(); // no tied weights
    const ParallelStrategy pp = makePipelineStrategy(net, 4, 4);
    std::uint64_t total = 0;
    std::uint64_t worst = 0;
    for (int s = 0; s < pp.pipelineStages(); ++s) {
        total += pp.stageWeightBytes(s);
        worst = std::max(worst, pp.stageWeightBytes(s));
    }
    EXPECT_EQ(total, net.totalWeightBytes());
    EXPECT_EQ(pp.weightBytesPerDevice(net), worst);
}

TEST(PipelineStrategy, TiedRnnStagesKeepASharedWeightCopy)
{
    const Network net = builders::buildRnnGemv(10, 128);
    const ParallelStrategy pp = makePipelineStrategy(net, 4, 4);
    // Every stage holding recurrent cells needs the shared weights
    // resident, so the per-stage sum exceeds the deduplicated model.
    std::uint64_t total = 0;
    for (int s = 0; s < pp.pipelineStages(); ++s) {
        EXPECT_GT(pp.stageWeightBytes(s), 0u);
        total += pp.stageWeightBytes(s);
    }
    EXPECT_GE(total, net.totalWeightBytes());
}

TEST(PipelineStrategy, TieGroupsSpanStagesForUnrolledRnns)
{
    const Network net = builders::buildRnnGemv(10, 128);
    const ParallelStrategy pp = makePipelineStrategy(net, 4, 4);
    const auto groups = pp.tieGroupStages();
    ASSERT_EQ(groups.size(), 1u); // One shared cell tensor (t0's).
    const auto &[owner, stages] = *groups.begin();
    EXPECT_FALSE(net.layer(owner).weightsTied()); // Owner is untied.
    EXPECT_TRUE(net.layer(owner).isRecurrent());
    EXPECT_GT(stages.size(), 1u); // 10 cells across 4 stages.
    // CNNs without tying have no spanning groups.
    const Network cnn = builders::buildAlexNet();
    EXPECT_TRUE(
        makePipelineStrategy(cnn, 4, 4).tieGroupStages().empty());
}

TEST(PipelineStrategy, StageStashLayersIncludeBoundaryInputs)
{
    const Network net = builders::buildResNet34();
    SystemConfig cfg;
    const OffloadPlan plan(net, cfg.offloadPolicy());
    const ParallelStrategy pp = makePipelineStrategy(net, 4, 8);
    bool found_boundary_input = false;
    for (int s = 1; s < pp.pipelineStages(); ++s) {
        for (LayerId id : pp.stageStashLayers(s, plan)) {
            EXPECT_EQ(plan.entry(id).action, TensorAction::Offload);
            if (pp.stageOfLayer(id) < s)
                found_boundary_input = true;
        }
    }
    EXPECT_TRUE(found_boundary_input);
}

TEST(PipelineStrategy, RejectsDegenerateConfigs)
{
    LogConfig::throwOnError = true;
    const Network net = builders::buildAlexNet();
    PipelineConfig pipe;
    pipe.stages = 9; // > devices
    pipe.microbatches = 4;
    EXPECT_THROW(ParallelStrategy(net, ParallelMode::Pipeline, 8, 512,
                                  pipe),
                 FatalError);
    pipe.stages = 4;
    pipe.microbatches = 0;
    EXPECT_THROW(ParallelStrategy(net, ParallelMode::Pipeline, 8, 512,
                                  pipe),
                 FatalError);
    pipe.microbatches = 1024; // > batch
    EXPECT_THROW(ParallelStrategy(net, ParallelMode::Pipeline, 8, 512,
                                  pipe),
                 FatalError);
    LogConfig::throwOnError = false;
}

// ----------------------------------------------- scenario round trips

TEST(PipelineScenario, TokensAndLabelRoundTrip)
{
    EXPECT_EQ(parseParallelMode("pp"), ParallelMode::Pipeline);
    EXPECT_EQ(parseParallelMode("pipeline"), ParallelMode::Pipeline);
    EXPECT_EQ(parseParallelMode("pipeline-parallel"),
              ParallelMode::Pipeline);
    EXPECT_STREQ(parallelModeToken(ParallelMode::Pipeline), "pp");
    EXPECT_STREQ(parallelModeName(ParallelMode::Pipeline),
                 "pipeline-parallel");

    Scenario sc;
    sc.workload = "ResNet";
    sc.design = SystemDesign::McDlaB;
    sc.mode = ParallelMode::Pipeline;
    sc.globalBatch = 512;
    sc.pipelineStages = 4;
    sc.microbatches = 8;
    EXPECT_EQ(sc.label(), "ResNet/mc-b/pp/b512/s4/mb8");
    // Unset stage count resolves to one stage per device.
    sc.pipelineStages = 0;
    EXPECT_EQ(sc.label(), "ResNet/mc-b/pp/b512/s8/mb8");
    // Non-pipeline labels stay untouched by the new knobs.
    sc.mode = ParallelMode::DataParallel;
    EXPECT_EQ(sc.label(), "ResNet/mc-b/dp/b512");
}

TEST(PipelineScenario, FromOptionsResolvesThePipelineKnobs)
{
    OptionParser opts("t", "test");
    Scenario::addOptions(opts);
    const char *argv[] = {"t",
                          "--mode", "pp",
                          "--pipeline-stages", "4",
                          "--microbatches", "8"};
    std::ostringstream err;
    ASSERT_TRUE(opts.parse(7, argv, err));
    const Scenario sc = Scenario::fromOptions(opts);
    EXPECT_EQ(sc.mode, ParallelMode::Pipeline);
    EXPECT_EQ(sc.pipelineStages, 4);
    EXPECT_EQ(sc.microbatches, 8);
}

TEST(PipelineScenario, FromOptionsRejectsBadPipelineKnobs)
{
    LogConfig::throwOnError = true;
    {
        OptionParser opts("t", "test");
        Scenario::addOptions(opts);
        const char *argv[] = {"t", "--microbatches", "0"};
        std::ostringstream err;
        ASSERT_TRUE(opts.parse(3, argv, err));
        EXPECT_THROW(Scenario::fromOptions(opts), FatalError);
    }
    {
        OptionParser opts("t", "test");
        Scenario::addOptions(opts);
        const char *argv[] = {"t", "--pipeline-stages", "-1"};
        std::ostringstream err;
        ASSERT_TRUE(opts.parse(3, argv, err));
        EXPECT_THROW(Scenario::fromOptions(opts), FatalError);
    }
    {
        // Batch not divisible into microbatches.
        OptionParser opts("t", "test");
        Scenario::addOptions(opts);
        const char *argv[] = {"t", "--mode", "pp", "--batch", "100",
                              "--microbatches", "8"};
        std::ostringstream err;
        ASSERT_TRUE(opts.parse(7, argv, err));
        EXPECT_THROW(Scenario::fromOptions(opts), FatalError);
    }
    LogConfig::throwOnError = false;
}

// ------------------------------------- DES against the analytic oracle

struct BoundsCase
{
    std::string workload;
    SystemDesign design;
    ParallelMode mode;
    int stages = 0;
    int microbatches = 1;
};

class DesWithinAnalyticBounds
    : public ::testing::TestWithParam<BoundsCase>
{};

TEST_P(DesWithinAnalyticBounds, MakespanFallsBetweenBounds)
{
    LogConfig::verbose = false;
    const BoundsCase &c = GetParam();

    Scenario sc;
    sc.design = c.design;
    sc.workload = c.workload;
    sc.mode = c.mode;
    sc.globalBatch = 256;
    sc.pipelineStages = c.stages;
    sc.microbatches = c.microbatches;

    Simulator sim;
    const Network &net = *sim.network(c.workload);
    const AnalyticEstimate est = estimateIteration(
        sc.config(), net, c.mode, sc.globalBatch, c.stages,
        c.microbatches);
    const IterationResult r = sim.run(sc);

    // The DES includes scheduling/latency effects the bounds ignore;
    // allow a small modelling margin on each side.
    EXPECT_GE(r.iterationSeconds(), est.lowerBoundSec() * 0.90)
        << sc.label();
    EXPECT_LE(r.iterationSeconds(), est.upperBoundSec() * 1.35)
        << sc.label();
    EXPECT_LE(est.lowerBoundSec(),
              est.upperBoundSec() * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DesWithinAnalyticBounds,
    ::testing::Values(
        // Pipeline mode across CNN and RNN workloads and designs.
        BoundsCase{"ResNet", SystemDesign::McDlaB,
                   ParallelMode::Pipeline, 4, 8},
        BoundsCase{"ResNet", SystemDesign::DcDla,
                   ParallelMode::Pipeline, 4, 8},
        BoundsCase{"ResNet", SystemDesign::McDlaB,
                   ParallelMode::Pipeline, 8, 4},
        BoundsCase{"RNN-GEMV", SystemDesign::McDlaB,
                   ParallelMode::Pipeline, 4, 8},
        BoundsCase{"RNN-GEMV", SystemDesign::McDlaL,
                   ParallelMode::Pipeline, 8, 8},
        BoundsCase{"VGG-E", SystemDesign::DcDla,
                   ParallelMode::Pipeline, 8, 8},
        BoundsCase{"GoogLeNet", SystemDesign::McDlaB,
                   ParallelMode::Pipeline, 4, 8},
        BoundsCase{"ResNet", SystemDesign::DcDlaOracle,
                   ParallelMode::Pipeline, 4, 8},
        // The legacy modes must satisfy the same oracle on the same
        // workloads (guards the shared estimate plumbing).
        BoundsCase{"ResNet", SystemDesign::McDlaB,
                   ParallelMode::DataParallel},
        BoundsCase{"ResNet", SystemDesign::McDlaB,
                   ParallelMode::ModelParallel},
        BoundsCase{"RNN-GEMV", SystemDesign::McDlaB,
                   ParallelMode::DataParallel},
        BoundsCase{"RNN-GEMV", SystemDesign::McDlaB,
                   ParallelMode::ModelParallel}),
    [](const auto &test_info) {
        std::string name = test_info.param.workload + "_"
            + systemDesignName(test_info.param.design) + "_"
            + parallelModeToken(test_info.param.mode) + "_s"
            + std::to_string(test_info.param.stages) + "_mb"
            + std::to_string(test_info.param.microbatches);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

// --------------------------------------------------- end-to-end runs

TEST(PipelineSession, DeterministicAcrossRuns)
{
    LogConfig::verbose = false;
    Scenario sc;
    sc.workload = "ResNet";
    sc.mode = ParallelMode::Pipeline;
    sc.globalBatch = 256;
    sc.pipelineStages = 4;
    sc.microbatches = 8;
    Simulator sim;
    const IterationResult a = sim.run(sc);
    const IterationResult b = sim.run(sc);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_DOUBLE_EQ(a.syncBytes, b.syncBytes);
}

TEST(PipelineSession, SteadyStateIterationsRepeat)
{
    LogConfig::verbose = false;
    Scenario sc;
    sc.workload = "RNN-GEMV";
    sc.mode = ParallelMode::Pipeline;
    sc.globalBatch = 256;
    sc.pipelineStages = 4;
    sc.microbatches = 8;
    Simulator sim;
    const IterationResult one = sim.run(sc);
    sc.iterations = 2;
    const IterationResult two = sim.run(sc);
    EXPECT_EQ(one.makespan, two.makespan);
}

TEST(PipelineSession, SyncBytesMatchTheBoundaryPayloads)
{
    LogConfig::verbose = false;
    const Network net = buildBenchmark("ResNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::Pipeline, 256,
                            4, 8);
    const IterationResult r = session.run();
    // Forward activation plus backward gradient of every boundary, one
    // transfer per microbatch.
    const ParallelStrategy &st = session.strategy();
    double expect = 0.0;
    for (int b = 0; b + 1 < st.pipelineStages(); ++b)
        expect += 2.0 * st.microbatches()
            * st.boundaryBytesPerMicrobatch(b);
    EXPECT_GT(expect, 0.0);
    EXPECT_DOUBLE_EQ(r.syncBytes, expect);
    // The transfers really went through the fabric: the collective/p2p
    // activity tracker saw them.
    EXPECT_GT(r.breakdown.syncSec, 0.0);
}

TEST(PipelineSession, TiedDwReductionsTravelToTheOwnerStage)
{
    LogConfig::verbose = false;
    const Network net = buildBenchmark("RNN-GEMV");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::Pipeline, 256,
                            4, 8);
    const IterationResult r = session.run();
    const ParallelStrategy &st = session.strategy();
    // Boundary payloads plus one dW contribution per non-owner member
    // stage of the shared recurrent weight tensor.
    double expect = 0.0;
    for (int b = 0; b + 1 < st.pipelineStages(); ++b)
        expect += 2.0 * st.microbatches()
            * st.boundaryBytesPerMicrobatch(b);
    double tied = 0.0;
    for (const auto &[owner, stages] : st.tieGroupStages())
        tied += static_cast<double>(stages.size() - 1)
            * static_cast<double>(net.layer(owner).weightBytes());
    EXPECT_GT(tied, 0.0);
    EXPECT_DOUBLE_EQ(r.syncBytes, expect + tied);
}

TEST(PipelineSession, PagersAreStageLocal)
{
    LogConfig::verbose = false;
    const Network net = buildBenchmark("ResNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::Pipeline, 256,
                            4, 8);
    session.run();
    // Stage devices page (stage tensors x microbatches) groups; idle
    // devices own nothing.
    std::size_t groups = 0;
    for (int d = 0; d < 4; ++d) {
        const std::size_t here =
            session.pager(d).pageTable().entries().size();
        EXPECT_GT(here, 0u) << "stage " << d;
        EXPECT_EQ(here % 8, 0u) << "stage " << d; // 8 microbatches
        groups += here;
    }
    for (int d = 4; d < 8; ++d)
        EXPECT_EQ(session.pager(d).pageTable().entries().size(), 0u);
    EXPECT_GT(groups, 0u);
    // Stage 0's counters surface in the iteration result.
    const IterationResult r = session.run();
    EXPECT_GT(r.paging.fills, 0u);
    EXPECT_EQ(r.paging.fills, r.paging.writebacks);
}

TEST(PipelineSession, SessionMatchesSimulatorFacade)
{
    LogConfig::verbose = false;
    Scenario sc;
    sc.workload = "ResNet";
    sc.mode = ParallelMode::Pipeline;
    sc.globalBatch = 256;
    sc.pipelineStages = 4;
    sc.microbatches = 8;

    Simulator sim;
    const IterationResult facade = sim.run(sc);

    EventQueue eq;
    System system(eq, sc.config());
    TrainingSession session(system, *sim.network("ResNet"), sc.mode,
                            sc.globalBatch, sc.pipelineStages,
                            sc.microbatches);
    const IterationResult manual = session.run();
    EXPECT_EQ(facade.makespan, manual.makespan);
    EXPECT_EQ(facade.eventsExecuted, manual.eventsExecuted);
}

} // anonymous namespace
} // namespace mcdla
