/**
 * @file
 * Unit tests for the reporting backends (CSV/JSON result sets, Chrome
 * tracing), the option parser, and iteration trace emission.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/mcdla.hh"
#include "core/options.hh"
#include "core/report.hh"

namespace mcdla
{
namespace
{

// -------------------------------------------------------------- results

TEST(ResultSet, CsvRoundTrip)
{
    ResultSet rs({"name", "value", "count"});
    rs.addRow({std::string("plain"), 1.5, std::int64_t{42}});
    rs.addRow({std::string("needs,quoting"), 2.0, std::int64_t{7}});
    std::ostringstream os;
    rs.writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("name,value,count\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,1.5,42"), std::string::npos);
    EXPECT_NE(csv.find("\"needs,quoting\""), std::string::npos);
}

TEST(ResultSet, CsvEscapesEmbeddedQuotes)
{
    ResultSet rs({"a"});
    rs.addRow({std::string("say \"hi\"")});
    std::ostringstream os;
    rs.writeCsv(os);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(ResultSet, JsonIsWellFormedEnough)
{
    ResultSet rs({"k", "v"});
    rs.addRow({std::string("x"), std::int64_t{1}});
    rs.addRow({std::string("y\"z"), 2.5});
    std::ostringstream os;
    rs.writeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("{\"k\": \"x\", \"v\": 1}"), std::string::npos);
    EXPECT_NE(json.find("y\\\"z"), std::string::npos);
}

TEST(ResultSet, CsvQuotesNewlinesAndCarriageReturns)
{
    // RFC 4180: line breaks inside a field force quoting; the field is
    // emitted verbatim inside the quotes.
    ResultSet rs({"a", "b"});
    rs.addRow({std::string("line1\nline2"), std::string("cr\rhere")});
    std::ostringstream os;
    rs.writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
    EXPECT_NE(csv.find("\"cr\rhere\""), std::string::npos);
}

TEST(ResultSet, CsvQuoteCommaNewlineCombined)
{
    ResultSet rs({"a"});
    rs.addRow({std::string("say \"hi\",\nbye")});
    std::ostringstream os;
    rs.writeCsv(os);
    // Quotes doubled, the rest verbatim, all inside one quoted field.
    EXPECT_NE(os.str().find("\"say \"\"hi\"\",\nbye\""),
              std::string::npos);
}

TEST(ResultSet, JsonEscapesControlCharacters)
{
    ResultSet rs({"k"});
    rs.addRow({std::string("tab\there\rcr\x01raw")});
    std::ostringstream os;
    rs.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("tab\\there\\rcr\\u0001raw"),
              std::string::npos);
    // No raw control bytes survive in the output.
    for (char c : json)
        EXPECT_TRUE(c == '\n'
                    || static_cast<unsigned char>(c) >= 0x20)
            << static_cast<int>(c);
}

TEST(ResultSet, JsonEmitsNullForNanAndInf)
{
    // JSON has no NaN/Infinity literals (RFC 8259); they become null.
    ResultSet rs({"a", "b", "c", "d"});
    rs.addRow({std::nan(""), HUGE_VAL, -HUGE_VAL, 2.5});
    std::ostringstream os;
    rs.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"a\": null"), std::string::npos);
    EXPECT_NE(json.find("\"b\": null"), std::string::npos);
    EXPECT_NE(json.find("\"c\": null"), std::string::npos);
    EXPECT_NE(json.find("\"d\": 2.5"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(ResultSet, CellAccess)
{
    ResultSet rs({"a", "b"});
    rs.addRow({std::int64_t{1}, std::int64_t{2}});
    EXPECT_EQ(std::get<std::int64_t>(rs.cell(0, 1)), 2);
    EXPECT_EQ(rs.rowCount(), 1u);
}

// --------------------------------------------------------------- tracing

TEST(TraceSink, EmitsChromeTracingJson)
{
    TraceSink sink;
    sink.addSpan("dev0.compute", "fwd conv1", 1000 * ticksPerUs,
                 500 * ticksPerUs);
    sink.addInstant("collectives", "barrier", 2000 * ticksPerUs);
    std::ostringstream os;
    sink.write(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("fwd conv1"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":500"), std::string::npos);
    EXPECT_EQ(sink.eventCount(), 2u);
    sink.clear();
    EXPECT_TRUE(sink.empty());
}

TEST(TraceSink, TrainingSessionEmitsSpans)
{
    const Network net = buildBenchmark("AlexNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            128);
    TraceSink sink;
    session.setTraceSink(&sink);
    session.run();
    EXPECT_GT(sink.eventCount(), 20u);
    std::ostringstream os;
    sink.write(os);
    EXPECT_NE(os.str().find("dev0.compute"), std::string::npos);
    EXPECT_NE(os.str().find("dev0.dma"), std::string::npos);
    EXPECT_NE(os.str().find("collectives"), std::string::npos);
}

TEST(SystemStats, DumpCoversComponents)
{
    const Network net = buildBenchmark("AlexNet");
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::DcDla;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            128);
    session.run();
    std::ostringstream os;
    dumpSystemStats(system, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("dev0.compute_busy_ticks"), std::string::npos);
    EXPECT_NE(text.find("dev0.dma.bytes_offloaded"),
              std::string::npos);
    EXPECT_NE(text.find(".nccl.ops"), std::string::npos);
    EXPECT_NE(text.find("socket0.dram"), std::string::npos);
}

// --------------------------------------------------------------- options

OptionParser
makeParser()
{
    OptionParser opts("tool", "test tool");
    opts.addString("name", "default", "a string");
    opts.addInt("count", 3, "an int");
    opts.addDouble("ratio", 1.5, "a double");
    opts.addFlag("verbose", "a flag");
    return opts;
}

TEST(Options, DefaultsApply)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"tool"};
    std::ostringstream err;
    ASSERT_TRUE(opts.parse(1, argv, err));
    EXPECT_EQ(opts.getString("name"), "default");
    EXPECT_EQ(opts.getInt("count"), 3);
    EXPECT_DOUBLE_EQ(opts.getDouble("ratio"), 1.5);
    EXPECT_FALSE(opts.getFlag("verbose"));
    EXPECT_FALSE(opts.wasSet("name"));
}

TEST(Options, ParsesBothValueSyntaxes)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"tool", "--name", "abc", "--count=7",
                          "--verbose"};
    std::ostringstream err;
    ASSERT_TRUE(opts.parse(5, argv, err));
    EXPECT_EQ(opts.getString("name"), "abc");
    EXPECT_EQ(opts.getInt("count"), 7);
    EXPECT_TRUE(opts.getFlag("verbose"));
    EXPECT_TRUE(opts.wasSet("count"));
}

TEST(Options, PositionalArgumentsCollected)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"tool", "pos1", "--count", "2", "pos2"};
    std::ostringstream err;
    ASSERT_TRUE(opts.parse(5, argv, err));
    EXPECT_EQ(opts.positional(),
              (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Options, RejectsUnknownOption)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"tool", "--bogus", "1"};
    std::ostringstream err;
    EXPECT_FALSE(opts.parse(3, argv, err));
    EXPECT_NE(err.str().find("unknown option"), std::string::npos);
}

TEST(Options, RejectsNonNumericValue)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"tool", "--count", "abc"};
    std::ostringstream err;
    EXPECT_FALSE(opts.parse(3, argv, err));
    EXPECT_NE(err.str().find("expects a number"), std::string::npos);
}

TEST(Options, MissingValueIsAnError)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"tool", "--count"};
    std::ostringstream err;
    EXPECT_FALSE(opts.parse(2, argv, err));
}

TEST(Options, HelpPrintsEveryOption)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"tool", "--help"};
    std::ostringstream err;
    EXPECT_FALSE(opts.parse(2, argv, err));
    EXPECT_NE(err.str().find("--name"), std::string::npos);
    EXPECT_NE(err.str().find("--ratio"), std::string::npos);
    EXPECT_NE(err.str().find("default: 1.5"), std::string::npos);
}

} // anonymous namespace
} // namespace mcdla
