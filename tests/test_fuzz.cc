/**
 * @file
 * Fuzz/property tests: seeded random DAGs must build, validate, and
 * simulate to completion on every design point with consistent
 * accounting — the scheduler must never deadlock regardless of graph
 * shape (branches, residuals, cheap chains, recurrent tails).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/scenario.hh"
#include "serving/request.hh"
#include "system/training_session.hh"
#include "workloads/synthetic.hh"

namespace mcdla
{
namespace
{

class SyntheticFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

SyntheticSpec
specForSeed(std::uint64_t seed)
{
    Random rng(seed * 7919 + 17);
    SyntheticSpec spec;
    spec.segments = 3 + static_cast<int>(rng.below(6));
    spec.inputSize = 32 + static_cast<std::int64_t>(rng.below(3)) * 16;
    spec.channels = 8 + static_cast<std::int64_t>(rng.below(16));
    spec.recurrentTail =
        rng.below(3) == 0 ? static_cast<std::int64_t>(rng.below(6)) + 2
                          : 0;
    return spec;
}

TEST_P(SyntheticFuzz, BuildsDeterministically)
{
    Random a(GetParam()), b(GetParam());
    const SyntheticSpec spec = specForSeed(GetParam());
    const Network x = buildSyntheticNetwork(a, spec);
    const Network y = buildSyntheticNetwork(b, spec);
    ASSERT_EQ(x.size(), y.size());
    EXPECT_EQ(x.totalParams(), y.totalParams());
    EXPECT_EQ(x.stashBytesPerSample(), y.stashBytesPerSample());
}

TEST_P(SyntheticFuzz, SimulatesOnEveryDesignWithoutDeadlock)
{
    Random rng(GetParam());
    const SyntheticSpec spec = specForSeed(GetParam());
    const Network net = buildSyntheticNetwork(rng, spec);

    // Rotate (design, mode) by seed to bound runtime while covering the
    // matrix across the suite.
    const SystemDesign design =
        kAllDesigns[GetParam() % std::size(kAllDesigns)];
    const ParallelMode mode = GetParam() % 2 == 0
        ? ParallelMode::DataParallel
        : ParallelMode::ModelParallel;

    EventQueue eq;
    SystemConfig cfg;
    cfg.design = design;
    System system(eq, cfg);
    TrainingSession session(system, net, mode, 64);
    const IterationResult r = session.run();

    EXPECT_GT(r.makespan, 0u);
    EXPECT_GT(r.breakdown.computeSec, 0.0);
    EXPECT_GE(r.iterationSeconds() * 1.0001, r.breakdown.computeSec);
    if (designVirtualizesMemory(design)) {
        EXPECT_GT(r.offloadBytesPerDevice, 0.0);
    } else {
        EXPECT_DOUBLE_EQ(r.offloadBytesPerDevice, 0.0);
    }
    if (!designUsesHostMemory(design)) {
        EXPECT_DOUBLE_EQ(r.hostBytes, 0.0);
    }
}

TEST_P(SyntheticFuzz, OffloadPlanPartitionsEveryTensor)
{
    Random rng(GetParam());
    const SyntheticSpec spec = specForSeed(GetParam());
    const Network net = buildSyntheticNetwork(rng, spec);
    const OffloadPlan plan(net, OffloadPolicy{});
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        const Layer &layer = net.layer(id);
        const TensorAction action = plan.entry(id).action;
        if (layer.costClass() == CostClass::Heavy) {
            EXPECT_EQ(action, TensorAction::Offload) << layer.name();
        }
        if (action == TensorAction::Offload
            && layer.kind() != LayerKind::Input) {
            EXPECT_GT(plan.entry(id).totalBytesPerSample(), 0u);
        }
    }
}

TEST_P(SyntheticFuzz, IterationIsReproducible)
{
    Random rng(GetParam());
    const SyntheticSpec spec = specForSeed(GetParam());
    const Network net = buildSyntheticNetwork(rng, spec);
    EventQueue eq;
    SystemConfig cfg;
    cfg.design = SystemDesign::McDlaB;
    System system(eq, cfg);
    TrainingSession session(system, net, ParallelMode::DataParallel,
                            64);
    const IterationResult a = session.run();
    const IterationResult b = session.run();
    EXPECT_EQ(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

class ServingFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ServingFuzz, SeededStreamsRoundTripThroughTraceText)
{
    // Every arrival process, fuzzed rates and counts: the trace text
    // of a synthesized stream must parse back bit-identically (names,
    // double-precision arrivals, sample counts), in arrival order.
    Random pick(GetParam() * 131 + 7);
    const ArrivalKind kind = allArrivalKinds()[pick.below(
        allArrivalKinds().size())];
    const int count = 8 + static_cast<int>(pick.below(56));
    const double rate =
        50.0 + static_cast<double>(pick.below(9000));

    Random rng(GetParam());
    const auto stream = synthesizeRequests(count, rate, kind, rng);

    std::ostringstream text;
    for (const Request &request : stream)
        text << requestLine(request) << '\n';
    std::istringstream in(text.str());
    const auto parsed = parseRequestTrace(in);

    ASSERT_EQ(parsed.size(), stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(parsed[i].name, stream[i].name);
        EXPECT_EQ(parsed[i].arrivalSec, stream[i].arrivalSec);
        EXPECT_EQ(parsed[i].samples, stream[i].samples);
    }
}

TEST_P(ServingFuzz, ServingScenarioLabelsNameTheirKnobs)
{
    // Fuzzed serving knob combinations: the label must carry every
    // non-default serve-block token it claims to round-trip.
    Random pick(GetParam() * 263 + 11);
    Scenario sc;
    sc.workload = "VGG-E";
    sc.serve = true;
    sc.replicas = 1 + static_cast<int>(pick.below(8));
    sc.batchPolicy =
        allBatchPolicies()[pick.below(allBatchPolicies().size())];
    sc.router = allRouters()[pick.below(allRouters().size())];
    sc.arrivals =
        allArrivalKinds()[pick.below(allArrivalKinds().size())];
    sc.sloMs = 5.0 + static_cast<double>(pick.below(200));
    sc.requestRate = 100.0 + static_cast<double>(pick.below(8000));

    const std::string label = sc.label();
    EXPECT_NE(label.find("/serve/r" + std::to_string(sc.replicas)),
              std::string::npos)
        << label;
    EXPECT_NE(label.find(batchPolicyToken(sc.batchPolicy)),
              std::string::npos);
    EXPECT_NE(label.find(routerToken(sc.router)), std::string::npos);
    if (sc.arrivals != ArrivalKind::Poisson) {
        EXPECT_NE(label.find(arrivalKindToken(sc.arrivals)),
                  std::string::npos);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

} // anonymous namespace
} // namespace mcdla
