/**
 * @file
 * mcdla_sim: the command-line driver of the simulator.
 *
 * Runs one (or every) registered workload on a chosen system design and
 * parallelization, with overrides for the interesting knobs (device
 * generation, PCIe generation, link bandwidth, DIMM type, batch size,
 * device count, page policy, compression). Option resolution lives in
 * Scenario::fromOptions; execution goes through the Simulator facade,
 * with a SweepRunner thread pool when --jobs asks for parallelism.
 * Emits a human-readable summary plus optional CSV/JSON result rows, a
 * Chrome-tracing timeline of the iteration, and a full gem5-style
 * statistics dump.
 *
 * --cluster switches to the multi-job mode: a stream of training jobs
 * (from --job-trace, or --jobs synthetic Poisson arrivals at
 * --arrival-rate over the job-mix catalog, seeded by --seed) is
 * scheduled onto one shared machine by --scheduler, with backing
 * stores carved from the shared memory pool by --allocator. --csv then
 * emits the per-job ClusterReport rows and --pool-csv the pool
 * occupancy/fragmentation timeline.
 *
 * --serve switches to the inference-serving mode: --replicas model
 * replicas of --workload answer an open-loop request stream (from
 * --request-trace, or --requests synthetic arrivals at --request-rate
 * under --arrivals, seeded by --seed), coalesced by --batch-policy
 * (capped at --batch samples), routed by --router against an --slo-ms
 * objective. A --job-trace co-locates training jobs on the remaining
 * devices so serving-under-training interference is measured. --csv
 * emits the per-request rows, --replica-csv the per-replica
 * utilization table.
 *
 * The interconnect is a sweep axis of its own: --topology rewires the
 * memory-centric node set through the generic Topology generators
 * (ring, full-switch, 2-D mesh/torus, fat-tree; --list-topologies
 * shows the catalog), --collective selects the collective algorithm
 * family (ring, tree, hierarchical), and --channel-csv emits
 * per-channel link-utilization rows so the bottleneck *link* of a run
 * can be named, not just the bottleneck stage.
 *
 * Examples:
 *   mcdla_sim --design mc-b --workload VGG-E --mode dp --batch 512
 *   mcdla_sim --workload all --design dc --jobs 4 --csv results.csv
 *   mcdla_sim --design mc-b --trace timeline.json --stats
 *   mcdla_sim --design mc-b --topology torus2d --collective tree \
 *       --channel-csv links.csv
 *   mcdla_sim --cluster --jobs 12 --arrival-rate 40 --seed 7 \
 *       --scheduler backfill --allocator buddy --placement compact \
 *       --csv jobs.csv
 */

#include <cctype>
#include <fstream>
#include <iostream>

#include "core/mcdla.hh"
#include "core/options.hh"
#include "sim/simcheck.hh"

using namespace mcdla;

namespace
{

/**
 * The observer bundle resolved from --trace / --trace-categories /
 * --metrics-* / --profile. Tracing implies a metrics registry even
 * without a --metrics-* file so the timeline gains counter tracks.
 */
struct Observers
{
    TraceSink trace;
    MetricRegistry metrics;
    DesProfiler profiler;
    CausalRecorder causal;
    bool wantTrace = false;
    bool wantMetrics = false;
    bool wantProfile = false;
    bool wantCausal = false;

    bool
    any() const
    {
        return wantTrace || wantMetrics || wantProfile || wantCausal;
    }
};

void
setupObservers(const OptionParser &opts, Observers &obs)
{
    obs.wantTrace = !opts.getString("trace").empty();
    obs.wantMetrics = obs.wantTrace
        || !opts.getString("metrics-csv").empty()
        || !opts.getString("metrics-json").empty();
    obs.wantProfile = opts.getFlag("profile")
        || !opts.getString("profile-json").empty();
    obs.wantCausal = opts.getFlag("causal")
        || !opts.getString("critical-path-csv").empty()
        || !opts.getString("causal-json").empty()
        || !opts.getString("slack-csv").empty()
        || !opts.getString("whatif").empty();

    if (obs.wantTrace && !opts.getString("trace-categories").empty()) {
        std::vector<std::string> cats;
        std::string cat;
        for (char c : opts.getString("trace-categories")) {
            if (c == ',') {
                if (!cat.empty())
                    cats.push_back(std::move(cat));
                cat.clear();
            } else if (c != ' ') {
                cat += c;
            }
        }
        if (!cat.empty())
            cats.push_back(std::move(cat));
        obs.trace.enableCategories(cats);
    }
    if (obs.wantMetrics) {
        const std::int64_t period_us = opts.getInt("metrics-period-us");
        if (period_us < 1)
            fatal("--metrics-period-us must be positive (got %lld)",
                  static_cast<long long>(period_us));
        obs.metrics.setPeriod(static_cast<Tick>(period_us)
                              * ticksPerUs);
        if (obs.wantTrace)
            obs.metrics.attachTrace(&obs.trace);
    }
}

/** "t.json" + "VGG-E" -> "t.VGG-E.json" (suffix sanitized). */
std::string
suffixedPath(const std::string &path, const std::string &suffix)
{
    if (path.empty() || suffix.empty())
        return path;
    std::string tag;
    for (char c : suffix)
        tag += std::isalnum(static_cast<unsigned char>(c)) != 0
            ? c : '-';
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos || dot == 0)
        return path + "." + tag;
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

/** Write the trace/metrics/causal files and the profiler reports. */
void
writeObserverOutputs(const OptionParser &opts, Observers &obs,
                     const std::string &suffix = "")
{
    // Causal analysis runs first so the critical path can be overlaid
    // on the timeline before the trace file is written below.
    if (obs.wantCausal) {
        const CausalAnalysis analysis(obs.causal);
        if (obs.wantTrace)
            analysis.overlayTrace(obs.trace);
        analysis.report(std::cout);
        if (!opts.getString("critical-path-csv").empty()) {
            const std::string path = suffixedPath(
                opts.getString("critical-path-csv"), suffix);
            std::ofstream out(path);
            analysis.criticalPathTable().writeCsv(out);
            std::cout << "wrote " << path << " ("
                      << analysis.criticalPath().size()
                      << " critical-path events)\n";
        }
        if (!opts.getString("slack-csv").empty()) {
            const std::string path =
                suffixedPath(opts.getString("slack-csv"), suffix);
            std::ofstream out(path);
            analysis.slackTable().writeCsv(out);
            std::cout << "wrote " << path << '\n';
        }
        if (!opts.getString("causal-json").empty()) {
            const std::string path =
                suffixedPath(opts.getString("causal-json"), suffix);
            std::ofstream out(path);
            analysis.writeJson(out);
            std::cout << "wrote " << path << '\n';
        }
        if (!opts.getString("whatif").empty()) {
            const std::vector<WhatIfChange> changes =
                parseWhatIfSpec(opts.getString("whatif"));
            const WhatIfResult result = analysis.whatIf(changes);
            std::cout << "whatif " << opts.getString("whatif")
                      << ": predicted makespan "
                      << TablePrinter::num(
                             ticksToSeconds(static_cast<Tick>(
                                 result.predicted)) * 1e3, 3)
                      << " ms (baseline "
                      << TablePrinter::num(
                             ticksToSeconds(result.baseline) * 1e3, 3)
                      << " ms, speedup "
                      << TablePrinter::num(result.speedup(), 3) << "x, "
                      << result.scaledEdges << " edges rescaled)\n";
        }
    }
    if (obs.wantTrace) {
        const std::string path =
            suffixedPath(opts.getString("trace"), suffix);
        std::ofstream out(path);
        obs.trace.write(out);
        std::cout << "wrote " << path << " (" << obs.trace.eventCount()
                  << " events, " << obs.trace.processCount()
                  << " processes)\n";
    }
    if (!opts.getString("metrics-csv").empty()) {
        const std::string path =
            suffixedPath(opts.getString("metrics-csv"), suffix);
        std::ofstream out(path);
        metricsTable(obs.metrics).writeCsv(out);
        std::cout << "wrote " << path << " ("
                  << obs.metrics.sampleCount() << " samples of "
                  << obs.metrics.metricCount() << " metrics)\n";
    }
    if (!opts.getString("metrics-json").empty()) {
        const std::string path =
            suffixedPath(opts.getString("metrics-json"), suffix);
        std::ofstream out(path);
        metricsTable(obs.metrics).writeJson(out);
        std::cout << "wrote " << path << '\n';
    }
    if (opts.getFlag("profile"))
        obs.profiler.report(std::cout);
    if (!opts.getString("profile-json").empty()) {
        const std::string path =
            suffixedPath(opts.getString("profile-json"), suffix);
        std::ofstream out(path);
        obs.profiler.reportJson(out);
        std::cout << "wrote " << path << '\n';
    }
}

/** One --audit-determinism run: the event-stream digest. */
struct AuditRun
{
    std::uint64_t streamHash = 0;
    std::uint64_t executed = 0;
};

/**
 * Execute the selected mode (sweep/cluster/serve) once from fresh
 * state with a DesProfiler attached, returning the (tick, label)
 * stream digest. Observer and table output stay off: the audit only
 * cares about the executed event stream.
 */
AuditRun
auditRunOnce(const OptionParser &opts, const Scenario &prototype)
{
    DesProfiler profiler;
    if (prototype.serve) {
        ServingConfig cfg;
        cfg.base = prototype;
        cfg.allocator =
            parsePoolAllocator(opts.getString("allocator"));
        cfg.progress = false;
        if (!opts.getString("job-trace").empty())
            cfg.trainingJobs =
                loadJobTrace(opts.getString("job-trace"));
        cfg.profiler = &profiler;
        std::vector<Request> stream;
        if (!opts.getString("request-trace").empty()) {
            stream = loadRequestTrace(opts.getString("request-trace"));
        } else {
            Random rng(prototype.seed);
            stream = synthesizeRequests(
                static_cast<int>(prototype.requests),
                prototype.requestRate, prototype.arrivals, rng);
        }
        ServingCluster serving(cfg, std::move(stream));
        (void)serving.run();
    } else if (opts.getFlag("cluster")) {
        ClusterConfig cfg;
        cfg.base = prototype;
        cfg.scheduler = parseScheduler(opts.getString("scheduler"));
        cfg.allocator =
            parsePoolAllocator(opts.getString("allocator"));
        cfg.placement = parseJobPlacement(opts.getString("placement"));
        cfg.progress = false;
        cfg.profiler = &profiler;
        std::vector<JobSpec> jobs;
        if (!opts.getString("job-trace").empty()) {
            jobs = loadJobTrace(opts.getString("job-trace"));
        } else {
            const int count = opts.wasSet("jobs")
                ? static_cast<int>(opts.getInt("jobs"))
                : 8;
            Random rng(prototype.seed);
            jobs = synthesizeJobs(count,
                                  opts.getDouble("arrival-rate"),
                                  prototype.base.fabric.numDevices,
                                  rng);
        }
        Cluster cluster(cfg, std::move(jobs));
        (void)cluster.run();
    } else {
        // A fresh Simulator per run: the network cache is read-only
        // after construction, but the audit should not share *any*
        // state between its two runs.
        Simulator sim;
        Simulator::Hooks hooks;
        hooks.profiler = &profiler;
        (void)sim.run(prototype, hooks);
    }
    return {profiler.streamHash(), profiler.eventsExecuted()};
}

/**
 * --audit-determinism: run the scenario twice from fresh state with
 * the same seed and compare the executed event streams. Divergence
 * means hidden state leaked into the simulation (host pointers used
 * as keys, uninitialized reads, a stray non-seeded RNG).
 */
int
auditDeterminism(const OptionParser &opts, const Scenario &prototype)
{
    const char *mode = prototype.serve ? "serve"
        : opts.getFlag("cluster")      ? "cluster"
                                       : parallelModeName(prototype.mode);
    const AuditRun first = auditRunOnce(opts, prototype);
    const AuditRun second = auditRunOnce(opts, prototype);
    if (first.streamHash != second.streamHash
        || first.executed != second.executed) {
        std::cerr << "determinism audit FAILED (" << mode << ", seed "
                  << prototype.seed << "): run 1 executed "
                  << first.executed << " events (stream hash "
                  << std::hex << first.streamHash << "), run 2 "
                  << std::dec << second.executed << " (stream hash "
                  << std::hex << second.streamHash << std::dec
                  << ")\n";
        return 1;
    }
    std::cout << "determinism audit passed (" << mode << ", seed "
              << prototype.seed << "): " << first.executed
              << " events, stream hash " << std::hex
              << first.streamHash << std::dec << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts(
        "mcdla_sim",
        "Memory-centric DL system simulator (MICRO-51 2018 "
        "reproduction)");
    Scenario::addOptions(opts);
    opts.addInt("jobs", 1,
                "sweep worker threads (0 = hardware concurrency); "
                "with --cluster: synthetic job count (default 8)");
    opts.addFlag("cluster",
                 "multi-job cluster mode (see --scheduler/--allocator)");
    opts.addString("scheduler", "fifo",
                   "cluster job scheduler: " + schedulerTokenList());
    opts.addString("allocator", "first-fit",
                   "cluster pool allocator: " + poolAllocatorTokenList());
    opts.addString("placement", "first",
                   "cluster device placement: "
                       + jobPlacementTokenList());
    opts.addDouble("arrival-rate", 25.0,
                   "synthetic job arrival rate, jobs/sec (--cluster)");
    opts.addString("job-trace", "",
                   "job trace file (key=value lines; overrides the "
                   "synthetic stream; with --serve: co-located "
                   "training jobs)");
    opts.addString("request-trace", "",
                   "request trace file (key=value lines; overrides "
                   "the synthetic stream; --serve)");
    opts.addString("replica-csv", "",
                   "write the per-replica serving utilization table "
                   "to this CSV file (--serve)");
    opts.addString("pool-csv", "",
                   "write the cluster pool timeline to this CSV file");
    opts.addString("csv", "", "write result rows to this CSV file");
    opts.addString("json", "", "write result rows to this JSON file");
    opts.addString("channel-csv", "",
                   "write per-channel link-utilization rows to this "
                   "CSV file (non-cluster runs)");
    opts.addString("trace", "",
                   "write a Chrome-tracing (Perfetto) timeline: "
                   "compute/DMA/collective spans, counter tracks, and "
                   "flow arrows; works with sweeps, --cluster and "
                   "--serve (with --workload all each scenario writes "
                   "its own suffixed file)");
    opts.addString("trace-categories", "",
                   "comma-separated trace category filter (op, dma, "
                   "sync, counter, flow, job, batch, request, queue, "
                   "mark; default: all)");
    opts.addString("metrics-csv", "",
                   "write the periodically sampled metrics time-series "
                   "to this CSV file");
    opts.addString("metrics-json", "",
                   "write the metrics time-series to this JSON file");
    opts.addInt("metrics-period-us", 100,
                "metrics sampling period in simulated microseconds");
    opts.addFlag("profile",
                 "print a DES wall-clock profile (host time per event "
                 "label, events/sec, heap depth) after the run");
    opts.addString("profile-json", "",
                   "write the DES profile (kernel counters, stream "
                   "hash, per-label wall time) to this JSON file");
    opts.addFlag("causal",
                 "record event provenance and print the "
                 "simulated-time critical-path attribution after the "
                 "run (execution order is unchanged)");
    opts.addString("critical-path-csv", "",
                   "write the critical-path steps to this CSV file "
                   "(implies --causal)");
    opts.addString("slack-csv", "",
                   "write the per-channel slack histogram — measured "
                   "safe parallel-DES lookahead — to this CSV file "
                   "(implies --causal)");
    opts.addString("causal-json", "",
                   "write the causal attribution/slack/DAG summary to "
                   "this JSON file (implies --causal)");
    opts.addString("whatif", "",
                   "predict the makespan under virtual speedups along "
                   "the recorded DAG: class:factor[,class:factor...] "
                   "e.g. compute:0.5,chan:0.8 (implies --causal)");
    opts.addFlag("stats", "dump component statistics after the run");
    opts.addFlag("list", "alias for --list-workloads");
    opts.addFlag("list-workloads",
                 "print the workload-registry catalog and exit");
    opts.addFlag("list-designs",
                 "print the supported system designs and exit");
    opts.addFlag("list-topologies",
                 "print the interconnect topology catalog and exit");
    opts.addFlag("list-schedulers",
                 "print the cluster scheduler catalog and exit");
    opts.addFlag("list-batch-policies",
                 "print the serving batch-policy and router catalogs "
                 "and exit");
    opts.addFlag("quiet", "suppress informational output");
    opts.addFlag("simcheck",
                 "enable the runtime invariant checks (SimCheck) for "
                 "this run, whatever the build default");
    opts.addFlag("audit-determinism",
                 "run the scenario twice with the same seed and fail "
                 "unless the executed (tick, label) event streams "
                 "hash identically");

    if (!opts.parse(argc, argv, std::cerr))
        return 1;

    if (opts.getFlag("list") || opts.getFlag("list-workloads")) {
        TablePrinter table({"Network", "Application",
                            "Layers/Timesteps"});
        for (const WorkloadInfo *info :
             WorkloadRegistry::instance().all())
            table.addRow({info->name, info->application,
                          std::to_string(info->depth)});
        table.print(std::cout);
        return 0;
    }
    if (opts.getFlag("list-designs")) {
        TablePrinter table({"Token", "Design", "Backing store",
                            "Page policy"});
        for (SystemDesign design : allSystemDesigns()) {
            SystemConfig cfg;
            cfg.design = design;
            const char *backing = !designVirtualizesMemory(design)
                ? "none (infinite local)"
                : (designUsesHostMemory(design) ? "host DRAM"
                                                : "memory nodes");
            table.addRow({systemDesignToken(design),
                          systemDesignName(design), backing,
                          designVirtualizesMemory(design)
                              ? pagePolicyName(cfg.pagePolicy())
                              : "-"});
        }
        table.print(std::cout);
        return 0;
    }
    if (opts.getFlag("list-topologies")) {
        // Instantiate each generic wiring at the default 8-device
        // scale so the catalog shows real node/link/ring counts.
        TablePrinter table({"Token", "Topology", "Nodes", "Links",
                            "Rings", "Notes"});
        for (TopologyKind kind : allTopologyKinds()) {
            if (kind == TopologyKind::Design) {
                table.addRow({topologyKindToken(kind),
                              topologyKindName(kind), "-", "-", "-",
                              "the system design's own wiring"});
                continue;
            }
            EventQueue eq;
            FabricConfig cfg; // default radix 18: fat-tree shows its
                              // two-level leaf/spine structure at n=8
            auto fab = buildTopologyFabric(eq, cfg, kind);
            const Topology &topo = fab->topology();
            std::string nodes;
            for (NodeKind nk : {NodeKind::Device, NodeKind::MemoryNode,
                                NodeKind::Switch}) {
                const int count = topo.count(nk);
                if (count == 0)
                    continue;
                if (!nodes.empty())
                    nodes += "+";
                nodes += std::to_string(count) + nodeKindTag(nk);
            }
            table.addRow({topologyKindToken(kind),
                          topologyKindName(kind), nodes,
                          std::to_string(topo.links().size()),
                          std::to_string(fab->rings().size()),
                          fab->router().fullyConnected()
                              ? "all-pairs routable"
                              : "partially connected"});
        }
        table.print(std::cout);
        std::cout << "\nUse --topology <token> with a memory-centric "
                     "design (and --collective ring|tree|hierarchical "
                     "to pick the collective algorithm).\n";
        return 0;
    }
    if (opts.getFlag("list-schedulers")) {
        TablePrinter table({"Token", "Scheduler"});
        for (SchedulerKind kind : allSchedulers())
            table.addRow({schedulerToken(kind),
                          schedulerDescription(kind)});
        table.print(std::cout);
        std::cout << "\nUse --scheduler <token> with --cluster.\n";
        return 0;
    }
    if (opts.getFlag("list-batch-policies")) {
        TablePrinter policies({"Token", "Batch policy"});
        for (BatchPolicyKind kind : allBatchPolicies())
            policies.addRow({batchPolicyToken(kind),
                             batchPolicyDescription(kind)});
        policies.print(std::cout);
        std::cout << '\n';
        TablePrinter routers({"Token", "Router"});
        for (RouterKind kind : allRouters())
            routers.addRow({routerToken(kind),
                            routerDescription(kind)});
        routers.print(std::cout);
        std::cout << "\nUse --batch-policy/--router <token> with "
                     "--serve.\n";
        return 0;
    }
    if (opts.getFlag("quiet"))
        LogConfig::verbose = false;
    if (opts.getFlag("simcheck"))
        simcheck::setEnabled(true);

    const Scenario prototype = Scenario::fromOptions(opts);

    if (opts.getFlag("audit-determinism")) {
        if (prototype.workload == "all")
            fatal("--audit-determinism audits one scenario; pick a "
                  "--workload");
        return auditDeterminism(opts, prototype);
    }

    if (prototype.serve) {
        if (opts.getFlag("cluster"))
            fatal("--serve and --cluster are mutually exclusive");
        if (!opts.getString("channel-csv").empty())
            warn("--channel-csv applies to single-machine sweeps; "
                 "ignoring it in --serve mode");
        ServingConfig cfg;
        cfg.base = prototype;
        cfg.allocator =
            parsePoolAllocator(opts.getString("allocator"));
        cfg.progress = LogConfig::verbose;
        if (!opts.getString("job-trace").empty())
            cfg.trainingJobs =
                loadJobTrace(opts.getString("job-trace"));
        if (opts.getFlag("stats"))
            warn("--stats applies to single-machine sweeps; ignoring "
                 "it in --serve mode");
        Observers obs;
        setupObservers(opts, obs);
        if (obs.wantTrace)
            cfg.trace = &obs.trace;
        if (obs.wantMetrics)
            cfg.metrics = &obs.metrics;
        if (obs.wantProfile)
            cfg.profiler = &obs.profiler;
        if (obs.wantCausal)
            cfg.causal = &obs.causal;

        std::vector<Request> stream;
        if (!opts.getString("request-trace").empty()) {
            stream = loadRequestTrace(opts.getString("request-trace"));
        } else {
            Random rng(prototype.seed);
            stream = synthesizeRequests(
                static_cast<int>(prototype.requests),
                prototype.requestRate, prototype.arrivals, rng);
        }

        ServingCluster serving(cfg, std::move(stream));
        const ServingReport report = serving.run();

        std::cout << systemDesignName(prototype.design) << " serving, "
                  << prototype.workload << " x" << prototype.replicas
                  << " replicas (max batch " << prototype.globalBatch
                  << "), " << batchPolicyToken(report.batchPolicy)
                  << " batching, " << routerToken(report.router)
                  << " router, SLO " << prototype.sloMs << " ms";
        if (!report.trainingJobs.empty())
            std::cout << ", " << report.trainingJobs.size()
                      << " co-located training job"
                      << (report.trainingJobs.size() == 1 ? "" : "s");
        std::cout << "\n\n";

        TablePrinter table({"Replica", "Device", "Batches", "Samples",
                            "MeanBatch", "Busy(s)", "Util",
                            "EWMA(ms/sample)", "PeakQueue"});
        for (std::size_t r = 0; r < report.replicas.size(); ++r) {
            const ReplicaStats &stats = report.replicas[r];
            table.addRow(
                {std::to_string(r), std::to_string(stats.device),
                 std::to_string(stats.batches),
                 std::to_string(stats.samplesServed),
                 TablePrinter::num(stats.meanBatchSamples(), 2),
                 TablePrinter::num(stats.busySec, 3),
                 TablePrinter::num(report.makespanSec > 0.0
                                       ? stats.busySec
                                           / report.makespanSec
                                       : 0.0,
                                   3),
                 TablePrinter::num(stats.ewmaPerSampleSec * 1e3, 3),
                 std::to_string(stats.peakQueueSamples)});
        }
        table.print(std::cout);

        std::cout << '\n'
                  << report.completedRequests() << '/'
                  << report.requests.size() << " requests completed ("
                  << report.droppedRequests()
                  << " shed); throughput "
                  << TablePrinter::num(report.throughputRps(), 1)
                  << " req/s, mean batch "
                  << TablePrinter::num(report.meanBatchSamples(), 2)
                  << " samples, makespan "
                  << TablePrinter::num(report.makespanSec, 3)
                  << " s\nlatency: mean "
                  << TablePrinter::num(report.meanLatencyMs(), 2)
                  << " ms, p50 "
                  << TablePrinter::num(
                         report.latencyPercentileMs(50.0), 2)
                  << " ms, p95 "
                  << TablePrinter::num(
                         report.latencyPercentileMs(95.0), 2)
                  << " ms, p99 "
                  << TablePrinter::num(
                         report.latencyPercentileMs(99.0), 2)
                  << " ms; SLO violations "
                  << TablePrinter::num(
                         report.sloViolationRate() * 100.0, 1)
                  << "%\n";
        for (const JobOutcome &job : report.trainingJobs) {
            std::cout << "training " << job.spec.name << " ("
                      << job.spec.workload << ", "
                      << job.spec.devices << " devs): ";
            if (job.completed)
                std::cout << "JCT "
                          << TablePrinter::num(job.jctSec(), 3)
                          << " s, slowdown "
                          << TablePrinter::num(job.slowdown(), 2)
                          << '\n';
            else
                std::cout << (job.rejected ? "rejected"
                                           : "incomplete")
                          << '\n';
        }

        if (!opts.getString("csv").empty()) {
            std::ofstream out(opts.getString("csv"));
            report.requestTable().writeCsv(out);
            std::cout << "\nwrote " << opts.getString("csv") << '\n';
        }
        if (!opts.getString("json").empty()) {
            std::ofstream out(opts.getString("json"));
            report.requestTable().writeJson(out);
            std::cout << "wrote " << opts.getString("json") << '\n';
        }
        if (!opts.getString("replica-csv").empty()) {
            std::ofstream out(opts.getString("replica-csv"));
            report.replicaTable().writeCsv(out);
            std::cout << "wrote " << opts.getString("replica-csv")
                      << '\n';
        }
        writeObserverOutputs(opts, obs);
        return 0;
    }

    if (opts.getFlag("cluster")) {
        if (!opts.getString("channel-csv").empty())
            warn("--channel-csv applies to single-machine sweeps; "
                 "ignoring it in --cluster mode");
        ClusterConfig cfg;
        cfg.base = prototype;
        cfg.scheduler = parseScheduler(opts.getString("scheduler"));
        cfg.allocator =
            parsePoolAllocator(opts.getString("allocator"));
        cfg.placement = parseJobPlacement(opts.getString("placement"));
        cfg.progress = LogConfig::verbose;
        if (opts.getFlag("stats"))
            warn("--stats applies to single-machine sweeps; ignoring "
                 "it in --cluster mode");
        Observers obs;
        setupObservers(opts, obs);
        if (obs.wantTrace)
            cfg.trace = &obs.trace;
        if (obs.wantMetrics)
            cfg.metrics = &obs.metrics;
        if (obs.wantProfile)
            cfg.profiler = &obs.profiler;
        if (obs.wantCausal)
            cfg.causal = &obs.causal;

        std::vector<JobSpec> jobs;
        if (!opts.getString("job-trace").empty()) {
            jobs = loadJobTrace(opts.getString("job-trace"));
        } else {
            const int count = opts.wasSet("jobs")
                ? static_cast<int>(opts.getInt("jobs"))
                : 8;
            Random rng(prototype.seed);
            jobs = synthesizeJobs(count,
                                  opts.getDouble("arrival-rate"),
                                  prototype.base.fabric.numDevices,
                                  rng);
        }

        Cluster cluster(cfg, std::move(jobs));
        const ClusterReport report = cluster.run();

        std::cout << systemDesignName(prototype.design) << " cluster, "
                  << prototype.base.fabric.numDevices << " devices, "
                  << schedulerToken(report.scheduler) << " scheduler, "
                  << poolAllocatorToken(report.allocator)
                  << " pool allocator, "
                  << jobPlacementToken(report.placement)
                  << " placement\n\n";
        TablePrinter table({"Job", "Workload", "Devs", "Arrive(s)",
                            "Queue(s)", "Service(s)", "JCT(s)",
                            "Slowdown", "Status"});
        for (const JobOutcome &job : report.jobs) {
            table.addRow(
                {job.spec.name, job.spec.workload,
                 std::to_string(job.spec.devices),
                 TablePrinter::num(job.arrivalSec, 3),
                 TablePrinter::num(
                     job.completed ? job.queueSec() : 0.0, 3),
                 TablePrinter::num(
                     job.completed ? job.serviceSec() : 0.0, 3),
                 TablePrinter::num(
                     job.completed ? job.jctSec() : 0.0, 3),
                 TablePrinter::num(
                     job.completed ? job.slowdown() : 0.0, 2),
                 job.rejected
                     ? "rejected"
                     : (job.completed ? "completed" : "incomplete")});
        }
        table.print(std::cout);
        std::cout << '\n'
                  << report.completedJobs() << '/' << report.jobs.size()
                  << " jobs completed; mean JCT "
                  << report.meanJctSec() << " s (p50 "
                  << TablePrinter::num(report.jctPercentileSec(50.0), 3)
                  << ", p95 "
                  << TablePrinter::num(report.jctPercentileSec(95.0), 3)
                  << ", p99 "
                  << TablePrinter::num(report.jctPercentileSec(99.0), 3)
                  << "), mean queue "
                  << report.meanQueueSec() << " s, makespan "
                  << report.makespanSec << " s\npool: peak "
                  << report.peakPoolUtilization() * 100.0
                  << "% of "
                  << static_cast<double>(report.poolCapacity)
                     / static_cast<double>(kGiB)
                  << " GiB, mean fragmentation "
                  << report.meanFragmentation() << ", "
                  << report.allocationFailures
                  << " allocation failures\n";

        if (!opts.getString("csv").empty()) {
            std::ofstream out(opts.getString("csv"));
            report.jobTable().writeCsv(out);
            std::cout << "\nwrote " << opts.getString("csv") << '\n';
        }
        if (!opts.getString("json").empty()) {
            std::ofstream out(opts.getString("json"));
            report.jobTable().writeJson(out);
            std::cout << "wrote " << opts.getString("json") << '\n';
        }
        if (!opts.getString("pool-csv").empty()) {
            std::ofstream out(opts.getString("pool-csv"));
            report.poolTable().writeCsv(out);
            std::cout << "wrote " << opts.getString("pool-csv")
                      << '\n';
        }
        writeObserverOutputs(opts, obs);
        return 0;
    }

    std::vector<Scenario> scenarios;
    if (prototype.workload == "all") {
        for (const std::string &name :
             WorkloadRegistry::instance().names()) {
            Scenario sc = prototype;
            sc.workload = name;
            scenarios.push_back(std::move(sc));
        }
    } else {
        WorkloadRegistry::instance().at(prototype.workload);
        scenarios.push_back(prototype);
    }

    // The observers (--trace/--metrics-*/--profile/--stats) need a
    // serial run over the live System; otherwise the sweep runner
    // handles any thread count. An explicit parallel request alongside
    // an observer is a contradiction, not a preference — reject it
    // instead of silently downgrading.
    const bool observed = !opts.getString("trace").empty()
        || !opts.getString("metrics-csv").empty()
        || !opts.getString("metrics-json").empty()
        || opts.getFlag("profile")
        || !opts.getString("profile-json").empty()
        || opts.getFlag("stats") || opts.getFlag("causal")
        || !opts.getString("critical-path-csv").empty()
        || !opts.getString("slack-csv").empty()
        || !opts.getString("causal-json").empty()
        || !opts.getString("whatif").empty();
    if (observed && opts.getInt("jobs") != 1)
        fatal("--trace/--metrics-*/--profile/--stats/--causal observe "
              "one live serial run; drop --jobs (or set --jobs 1). "
              "With --workload all the scenarios run serially and "
              "each observer file gains a per-workload suffix.");

    SweepRunner runner(SweepConfig{
        observed ? 1 : static_cast<int>(opts.getInt("jobs")),
        /*progress=*/false});

    // Keep the raw IterationResults so --channel-csv can emit the
    // per-channel link-utilization rows next to the summary table.
    std::vector<IterationResult> iter_results;
    if (observed) {
        // Each scenario gets a fresh observer set (a shared
        // MetricRegistry would re-register its gauges), and its
        // outputs go to per-workload suffixed files when the sweep
        // has more than one scenario.
        const bool multi = scenarios.size() > 1;
        for (const Scenario &sc : scenarios) {
            Observers obs;
            setupObservers(opts, obs);
            Simulator::Hooks hooks;
            if (obs.wantTrace)
                hooks.trace = &obs.trace;
            if (opts.getFlag("stats"))
                hooks.stats = &std::cout;
            if (obs.wantMetrics)
                hooks.metrics = &obs.metrics;
            if (obs.wantProfile)
                hooks.profiler = &obs.profiler;
            if (obs.wantCausal)
                hooks.causal = &obs.causal;
            iter_results.push_back(runner.simulator().run(sc, hooks));
            if (obs.wantProfile && multi)
                std::cout << '\n' << sc.label() << ":\n";
            writeObserverOutputs(opts, obs,
                                 multi ? sc.workload : "");
        }
    } else {
        iter_results = runner.run(scenarios);
    }
    ResultSet results(SweepRunner::resultColumns());
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        results.addRow(SweepRunner::resultRow(scenarios[i],
                                              iter_results[i]));

    TablePrinter table({"Workload", "Iter(ms)", "Compute(ms)",
                        "Sync(ms)", "Vmem(ms)", "Host(GB)",
                        "Events"});
    for (std::size_t r = 0; r < results.rowCount(); ++r) {
        auto num = [&](std::size_t col, int digits) {
            return TablePrinter::num(
                std::get<double>(results.cell(r, col)), digits);
        };
        table.addRow({scenarios[r].workload, num(4, 2), num(5, 2),
                      num(6, 2), num(7, 2), num(8, 2),
                      std::to_string(std::get<std::int64_t>(
                          results.cell(r, 10)))});
    }

    std::cout << systemDesignName(prototype.design) << ", "
              << parallelModeName(prototype.mode) << ", batch "
              << prototype.globalBatch << ", "
              << prototype.base.fabric.numDevices << " devices ("
              << opts.getString("device-gen") << "-class)\n\n";
    table.print(std::cout);

    if (!opts.getString("csv").empty()) {
        std::ofstream out(opts.getString("csv"));
        results.writeCsv(out);
        std::cout << "\nwrote " << opts.getString("csv") << '\n';
    }
    if (!opts.getString("json").empty()) {
        std::ofstream out(opts.getString("json"));
        results.writeJson(out);
        std::cout << "\nwrote " << opts.getString("json") << '\n';
    }
    if (!opts.getString("channel-csv").empty()) {
        ResultSet channel_table(channelUsageColumns());
        for (std::size_t i = 0; i < scenarios.size(); ++i)
            appendChannelUsageRows(channel_table,
                                   scenarios[i].label(),
                                   iter_results[i]);
        std::ofstream out(opts.getString("channel-csv"));
        channel_table.writeCsv(out);
        // Headline the worst link across the whole sweep, named by
        // the scenario it bottlenecked.
        const ChannelUsage *bottleneck = nullptr;
        const Scenario *bottleneck_sc = nullptr;
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            const ChannelUsage *worst =
                iter_results[i].bottleneckChannel();
            if (worst != nullptr
                && (bottleneck == nullptr
                    || worst->utilization
                        > bottleneck->utilization)) {
                bottleneck = worst;
                bottleneck_sc = &scenarios[i];
            }
        }
        if (bottleneck != nullptr) {
            std::cout << "\nwrote " << opts.getString("channel-csv")
                      << " (bottleneck link: " << bottleneck->channel
                      << " at "
                      << TablePrinter::num(
                             bottleneck->utilization * 100.0, 1)
                      << "% utilization, "
                      << bottleneck_sc->label() << ")\n";
        } else {
            std::cout << "\nwrote " << opts.getString("channel-csv")
                      << '\n';
        }
    }
    return 0;
}
