/**
 * @file
 * mcdla_sim: the command-line driver of the simulator.
 *
 * Runs one (or every) Table III workload on a chosen system design and
 * parallelization, with overrides for the interesting knobs (device
 * generation, PCIe generation, link bandwidth, DIMM type, batch size,
 * device count, page policy, compression). Emits a human-readable
 * summary plus optional CSV/JSON result rows, a Chrome-tracing timeline
 * of the iteration, and a full gem5-style statistics dump.
 *
 * Examples:
 *   mcdla_sim --design mc-b --workload VGG-E --mode dp --batch 512
 *   mcdla_sim --workload all --design dc --csv results.csv
 *   mcdla_sim --design mc-b --trace timeline.json --stats
 */

#include <fstream>
#include <iostream>

#include "core/mcdla.hh"
#include "core/options.hh"
#include "core/report.hh"

using namespace mcdla;

namespace
{

SystemDesign
parseDesign(const std::string &name)
{
    if (name == "dc")
        return SystemDesign::DcDla;
    if (name == "hc")
        return SystemDesign::HcDla;
    if (name == "mc-s")
        return SystemDesign::McDlaS;
    if (name == "mc-l")
        return SystemDesign::McDlaL;
    if (name == "mc-b")
        return SystemDesign::McDlaB;
    if (name == "oracle")
        return SystemDesign::DcDlaOracle;
    if (name == "mc-sa")
        return SystemDesign::McDlaSA;
    fatal("unknown design '%s' (dc, hc, mc-s, mc-l, mc-b, mc-sa, "
          "oracle)", name.c_str());
}

ParallelMode
parseMode(const std::string &name)
{
    if (name == "dp")
        return ParallelMode::DataParallel;
    if (name == "mp")
        return ParallelMode::ModelParallel;
    fatal("unknown mode '%s' (dp, mp)", name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts(
        "mcdla_sim",
        "Memory-centric DL system simulator (MICRO-51 2018 "
        "reproduction)");
    opts.addString("design", "mc-b",
                   "system design: dc, hc, mc-s, mc-l, mc-b, mc-sa, "
                   "oracle");
    opts.addString("workload", "ResNet",
                   "Table III network name, or 'all'");
    opts.addString("mode", "dp", "parallelization: dp or mp");
    opts.addInt("batch", kDefaultBatch, "global minibatch size");
    opts.addInt("devices", 8, "device-node count");
    opts.addString("device-gen", "Volta",
                   "device generation (Kepler..TPUv2)");
    opts.addInt("pcie-gen", 3, "PCIe generation for the host link");
    opts.addDouble("link-gbps", 25.0,
                   "device-side link bandwidth, GB/s per direction");
    opts.addInt("dimm-gib", 128,
                "memory-node DIMM capacity (8/16/32/64/128 GiB)");
    opts.addDouble("socket-gbps", 0.0,
                   "host socket bandwidth cap, GB/s (0 = uncapped)");
    opts.addDouble("compression", 1.0, "cDMA compression ratio");
    opts.addInt("iterations", 1, "training iterations to simulate");
    opts.addFlag("no-recompute", "disable the footnote-4 optimization");
    opts.addString("csv", "", "write result rows to this CSV file");
    opts.addString("json", "", "write result rows to this JSON file");
    opts.addString("trace", "",
                   "write a Chrome-tracing timeline (one iteration)");
    opts.addFlag("stats", "dump component statistics after the run");
    opts.addFlag("list", "list the Table III workloads and exit");
    opts.addFlag("quiet", "suppress informational output");

    if (!opts.parse(argc, argv, std::cerr))
        return 1;

    if (opts.getFlag("list")) {
        TablePrinter table({"Network", "Application",
                            "Layers/Timesteps"});
        for (const BenchmarkInfo &info : benchmarkCatalog())
            table.addRow({info.name, info.application,
                          std::to_string(info.depth)});
        table.print(std::cout);
        return 0;
    }
    if (opts.getFlag("quiet"))
        LogConfig::verbose = false;

    // Resolve configuration.
    SystemConfig cfg;
    cfg.design = parseDesign(opts.getString("design"));
    cfg.device = deviceGeneration(opts.getString("device-gen"));
    cfg.device.linkBandwidth = opts.getDouble("link-gbps") * kGB;
    cfg.fabric.numDevices = static_cast<int>(opts.getInt("devices"));
    cfg.fabric.pcieRawBandwidth =
        16.0 * kGB
        * static_cast<double>(1LL << (opts.getInt("pcie-gen") - 3));
    cfg.fabric.socketBandwidth = opts.getDouble("socket-gbps") * kGB;
    cfg.memNode.dimm = dimmByCapacityGib(
        static_cast<unsigned>(opts.getInt("dimm-gib")));
    cfg.dmaCompressionRatio = opts.getDouble("compression");
    cfg.recomputeCheapLayers = !opts.getFlag("no-recompute");

    const ParallelMode mode = parseMode(opts.getString("mode"));
    const std::int64_t batch = opts.getInt("batch");
    const auto iterations =
        static_cast<int>(opts.getInt("iterations"));

    std::vector<std::string> workloads;
    if (opts.getString("workload") == "all")
        workloads = benchmarkNames();
    else
        workloads.push_back(opts.getString("workload"));

    ResultSet results({"workload", "design", "mode", "batch",
                       "iteration_ms", "compute_ms", "sync_ms",
                       "vmem_ms", "host_gb", "host_peak_gbps",
                       "events"});
    TablePrinter table({"Workload", "Iter(ms)", "Compute(ms)",
                        "Sync(ms)", "Vmem(ms)", "Host(GB)",
                        "Events"});
    TraceSink trace;

    for (const std::string &workload : workloads) {
        const Network net = buildBenchmark(workload);
        EventQueue eq;
        System system(eq, cfg);
        TrainingSession session(system, net, mode, batch);
        if (!opts.getString("trace").empty())
            session.setTraceSink(&trace);

        IterationResult r;
        for (int i = 0; i < iterations; ++i)
            r = session.run();

        results.addRow({workload,
                        std::string(systemDesignName(cfg.design)),
                        std::string(parallelModeName(mode)), batch,
                        r.iterationSeconds() * 1e3,
                        r.breakdown.computeSec * 1e3,
                        r.breakdown.syncSec * 1e3,
                        r.breakdown.vmemSec * 1e3, r.hostBytes / 1e9,
                        r.hostPeakBwPerSocket / kGB,
                        static_cast<std::int64_t>(r.eventsExecuted)});
        table.addRow({workload,
                      TablePrinter::num(r.iterationSeconds() * 1e3, 2),
                      TablePrinter::num(r.breakdown.computeSec * 1e3,
                                        2),
                      TablePrinter::num(r.breakdown.syncSec * 1e3, 2),
                      TablePrinter::num(r.breakdown.vmemSec * 1e3, 2),
                      TablePrinter::num(r.hostBytes / 1e9, 2),
                      std::to_string(r.eventsExecuted)});

        if (opts.getFlag("stats"))
            dumpSystemStats(system, std::cout);
    }

    std::cout << systemDesignName(cfg.design) << ", "
              << parallelModeName(mode) << ", batch " << batch << ", "
              << cfg.fabric.numDevices << " devices ("
              << opts.getString("device-gen") << "-class)\n\n";
    table.print(std::cout);

    if (!opts.getString("csv").empty()) {
        std::ofstream out(opts.getString("csv"));
        results.writeCsv(out);
        std::cout << "\nwrote " << opts.getString("csv") << '\n';
    }
    if (!opts.getString("json").empty()) {
        std::ofstream out(opts.getString("json"));
        results.writeJson(out);
        std::cout << "\nwrote " << opts.getString("json") << '\n';
    }
    if (!opts.getString("trace").empty()) {
        std::ofstream out(opts.getString("trace"));
        trace.write(out);
        std::cout << "\nwrote " << opts.getString("trace") << " ("
                  << trace.eventCount() << " events)\n";
    }
    return 0;
}
