#!/usr/bin/env python3
"""Project-specific lint for the mcdla simulator sources.

Three repo hazards that clang-tidy cannot know about:

  rng        Simulation randomness must flow through the seeded
             xoshiro256** in sim/random.hh. Any other entropy source
             (std::rand, <random> engines, wall-clock seeds) silently
             breaks run-to-run determinism, which `mcdla_sim
             --audit-determinism` enforces.

  json       JSON is emitted through sim/json.hh's escaper. A file
             that hand-escapes quotes in streamed string literals has
             started growing its own (subtly different) escaper.

  schedule   All simulated work is ordered by the EventQueue. A
             private priority queue of timed work, or host sleeps
             standing in for simulated delay, bypasses the DES kernel
             (and its SimCheck monotonicity guarantees).

A finding can be waived on its line with `// lint:allow(<rule>)`.
Exit status is the number of findings (0 = clean).

Usage: check_sources.py [root ...]   (default: src tools)
"""

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cc", ".hh", ".h", ".cpp", ".hpp"}

# rule name -> (pattern, message)
LINE_RULES = {
    "rng": (
        re.compile(
            r"std::rand\b|[^_\w]srand\s*\(|std::mt19937|"
            r"std::minstd_rand|random_device|#include\s*<random>|"
            r"[^_\w]time\s*\(\s*(?:NULL|nullptr|0)?\s*\)|"
            r"gettimeofday\s*\(|std::time\b"
        ),
        "use the seeded Random in sim/random.hh, not ad-hoc entropy",
    ),
    "schedule": (
        re.compile(
            r"std::priority_queue|std::this_thread|sleep_for|"
            r"sleep_until|[^_\w]usleep\s*\(|[^_\w]nanosleep\s*\(|"
            r"[^_\w]alarm\s*\(|setitimer"
        ),
        "order simulated work through EventQueue, not a private "
        "queue or host sleeps",
    ),
}

# Files where a rule's pattern is the implementation itself.
EXEMPT = {
    "rng": ("src/sim/random.hh",),
    "schedule": ("src/sim/event_queue.hh", "src/sim/event_queue.cc"),
    "json": ("src/sim/json.hh", "src/sim/json.cc"),
}

ALLOW = re.compile(r"//\s*lint:allow\((?P<rule>[\w-]+)\)")

# A streamed string literal that hand-escapes a quote, e.g.
#   os << "\"name\": ";
HAND_JSON = re.compile(r'"[^"\n]*\\"')
JSON_INCLUDE = re.compile(r'#include\s*"sim/json\.hh"')


def strip_comments(line: str) -> str:
    """Drop // and /* */ comment text (single-line approximation)."""
    line = re.sub(r"/\*.*?\*/", "", line)
    return re.sub(r"//.*", "", line)


def lint_file(path: Path, rel: str) -> list:
    findings = []
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    has_json_include = JSON_INCLUDE.search(text) is not None

    in_block_comment = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        code = strip_comments(line)
        if "/*" in line and "*/" not in line[line.find("/*"):]:
            in_block_comment = True
            code = code[: code.find("/*")] if "/*" in code else code

        allowed = {m.group("rule") for m in ALLOW.finditer(raw)}

        for rule, (pattern, message) in LINE_RULES.items():
            if rel in EXEMPT.get(rule, ()) or rule in allowed:
                continue
            if pattern.search(code):
                findings.append((rel, lineno, rule, message))

        if (
            "json" not in allowed
            and rel not in EXEMPT["json"]
            and not has_json_include
            and HAND_JSON.search(code)
        ):
            findings.append(
                (
                    rel,
                    lineno,
                    "json",
                    "hand-escaped quote in a string literal; emit "
                    "JSON through sim/json.hh",
                )
            )
    return findings


def main(argv: list) -> int:
    repo = Path(__file__).resolve().parents[2]
    roots = argv[1:] or ["src", "tools"]
    findings = []
    for root in roots:
        base = repo / root
        if not base.exists():
            print(f"lint: no such root: {root}", file=sys.stderr)
            return 1
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            rel = path.relative_to(repo).as_posix()
            findings.extend(lint_file(path, rel))

    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
    else:
        print("lint: clean")
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
